//! Synthetic trace generators.
//!
//! The paper's corpora are the FCC Measuring Broadband America dataset and
//! the Norway 3G/HSDPA commute dataset, both preprocessed the way the
//! Pensieve artifacts do (bandwidth clipped into the range relevant to the
//! 0.3–4.3 Mbit/s bitrate ladder). We cannot ship those datasets, so these
//! generators synthesize corpora with the same gross character:
//!
//! * [`fcc_like`] — benign fixed-line broadband: slowly drifting bandwidth,
//!   modest variance, no outages (mean ≈ 2.4 Mbit/s after Pensieve-style
//!   clipping to 0.2–6 Mbit/s).
//! * [`hsdpa_like`] — mobile commute: regime-switching between good /
//!   degraded / near-outage states (tunnels, handovers), low mean
//!   (≈ 1.3 Mbit/s) and high variance.
//!
//! Only the *distributional contrast* between the two corpora matters for
//! the paper's Fig. 4 (a broadband-trained Pensieve under-performs on 3G;
//! adversarial traces close the gap), and these generators preserve it.

use crate::{Segment, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shared generator knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Total trace duration in seconds.
    pub duration_s: f64,
    /// Duration of each piecewise-constant segment in seconds.
    pub granularity_s: f64,
    /// One-way latency in milliseconds (constant per trace).
    pub latency_ms: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        // 48 chunks × 4 s = 192 s videos; leave headroom for rebuffering.
        GenConfig { duration_s: 320.0, granularity_s: 4.0, latency_ms: 40.0 }
    }
}

impl GenConfig {
    /// Debug-assert the knobs are physical: positive duration and
    /// granularity, finite non-negative latency. Generators call this on
    /// entry so a bad config fails loudly at the source instead of
    /// producing a degenerate corpus.
    fn check(&self) {
        debug_assert!(
            self.duration_s > 0.0 && self.duration_s.is_finite(),
            "GenConfig.duration_s must be positive and finite, got {}",
            self.duration_s
        );
        debug_assert!(
            self.granularity_s > 0.0 && self.granularity_s.is_finite(),
            "GenConfig.granularity_s must be positive and finite, got {}",
            self.granularity_s
        );
        debug_assert!(
            self.latency_ms >= 0.0 && self.latency_ms.is_finite(),
            "GenConfig.latency_ms must be non-negative and finite, got {}",
            self.latency_ms
        );
    }
}

/// Floor for generated bandwidth (Mbit/s) — far below every family's
/// lowest legitimate output (hsdpa outages bottom out at 0.02).
const MIN_BANDWIDTH_MBPS: f64 = 1e-3;
/// Floor for generated segment duration (s) — far below the 30 ms CC
/// interval, the shortest legitimate segment any family emits.
const MIN_DURATION_S: f64 = 1e-3;

/// Funnel for every generated segment: debug-assert the raw values are
/// physical, and clamp them in release builds so no family can emit a
/// degenerate entry (zero/negative bandwidth, zero duration, NaN) that
/// downstream simulators — and the serving fleet — would have to defend
/// against a second time. Legitimate outputs sit far above the floors,
/// so the clamp is bit-transparent for every in-range trace.
fn sane(seg: Segment) -> Segment {
    debug_assert!(
        seg.duration_s >= MIN_DURATION_S && seg.duration_s.is_finite(),
        "degenerate segment duration {}",
        seg.duration_s
    );
    debug_assert!(
        seg.bandwidth_mbps >= MIN_BANDWIDTH_MBPS && seg.bandwidth_mbps.is_finite(),
        "degenerate segment bandwidth {}",
        seg.bandwidth_mbps
    );
    debug_assert!(
        seg.latency_ms >= 0.0 && seg.latency_ms.is_finite(),
        "degenerate segment latency {}",
        seg.latency_ms
    );
    debug_assert!(
        (0.0..=1.0).contains(&seg.loss_rate),
        "degenerate segment loss rate {}",
        seg.loss_rate
    );
    // not `clamp`: NaN must scrub down to the floor, not propagate
    fn scrub(v: f64, floor: f64) -> f64 {
        if v.is_finite() {
            v.max(floor)
        } else if v == f64::INFINITY {
            f64::MAX
        } else {
            floor
        }
    }
    Segment {
        duration_s: scrub(seg.duration_s, MIN_DURATION_S),
        bandwidth_mbps: scrub(seg.bandwidth_mbps, MIN_BANDWIDTH_MBPS),
        latency_ms: scrub(seg.latency_ms, 0.0),
        loss_rate: if seg.loss_rate.is_finite() { seg.loss_rate.clamp(0.0, 1.0) } else { 0.0 },
    }
}

/// FCC-broadband-like trace: an AR(1) random walk in log-bandwidth around a
/// per-trace mean drawn from 1.5–4 Mbit/s, clipped to 0.2–6 Mbit/s.
pub fn fcc_like(seed: u64, cfg: &GenConfig) -> Trace {
    cfg.check();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfcc0_0000_0000_0000);
    let mean_log = rng.gen_range(1.5_f64..4.0).ln();
    let mut level = mean_log + rng.gen_range(-0.15..0.15);
    let n = (cfg.duration_s / cfg.granularity_s).ceil() as usize;
    let mut segments = Vec::with_capacity(n);
    for _ in 0..n {
        // slow mean reversion + small innovation: calm fixed-line behaviour
        level += 0.2 * (mean_log - level) + rng.gen_range(-0.08..0.08);
        let bw = level.exp().clamp(0.2, 6.0);
        segments.push(sane(Segment::bw(cfg.granularity_s, bw, cfg.latency_ms)));
    }
    Trace::new(format!("fcc-like-{seed}"), segments)
}

/// Norway-3G/HSDPA-like trace: a three-state Markov regime model.
///
/// States: `Good` (1.5–4 Mbit/s), `Degraded` (0.3–1.5 Mbit/s) and
/// `Outage` (0.03–0.15 Mbit/s, e.g. tunnels). Dwell times are geometric;
/// within a state the bandwidth jitters multiplicatively each segment.
pub fn hsdpa_like(seed: u64, cfg: &GenConfig) -> Trace {
    cfg.check();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3600_0000_0000_0000);
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Good,
        Degraded,
        Outage,
    }
    let mut state = if rng.gen_bool(0.5) { State::Good } else { State::Degraded };
    let n = (cfg.duration_s / cfg.granularity_s).ceil() as usize;
    let mut segments = Vec::with_capacity(n);
    let mut base = match state {
        State::Good => rng.gen_range(1.5..4.0),
        State::Degraded => rng.gen_range(0.3..1.5),
        State::Outage => rng.gen_range(0.03..0.15),
    };
    for _ in 0..n {
        // state transitions (per ~4 s segment)
        let u: f64 = rng.gen();
        state = match state {
            State::Good if u < 0.12 => State::Degraded,
            State::Good if u < 0.15 => State::Outage,
            State::Degraded if u < 0.10 => State::Good,
            State::Degraded if u < 0.18 => State::Outage,
            State::Outage if u < 0.35 => State::Degraded,
            s => s,
        };
        let (lo, hi) = match state {
            State::Good => (1.5, 4.0),
            State::Degraded => (0.3, 1.5),
            State::Outage => (0.03, 0.15),
        };
        // drift the base toward the state's band, then jitter hard
        if base < lo || base > hi {
            base = rng.gen_range(lo..hi);
        }
        let jitter = rng.gen_range(0.6_f64..1.5);
        let bw = (base * jitter).clamp(0.02, 6.0);
        segments.push(sane(Segment::bw(cfg.granularity_s, bw, cfg.latency_ms)));
    }
    Trace::new(format!("hsdpa-like-{seed}"), segments)
}

/// Random ABR trace: bandwidth uniform in the adversary's action range
/// (0.8–4.8 Mbit/s per the paper, one draw per chunk slot). This is the
/// paper's random baseline for Figs. 1c and 2.
pub fn random_abr_trace(
    seed: u64,
    n_segments: usize,
    granularity_s: f64,
    latency_ms: f64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xab00_0000_0000_0000);
    let segments = (0..n_segments)
        .map(|_| sane(Segment::bw(granularity_s, rng.gen_range(0.8..4.8), latency_ms)))
        .collect();
    Trace::new(format!("random-abr-{seed}"), segments)
}

/// Random congestion-control trace: per-30 ms uniform draws inside the
/// Table 1 ranges (bandwidth 6–24 Mbit/s, latency 15–60 ms, loss 0–10 %).
pub fn random_cc_trace(seed: u64, n_intervals: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xcc00_0000_0000_0000);
    let segments = (0..n_intervals)
        .map(|_| {
            sane(Segment {
                duration_s: 0.030,
                bandwidth_mbps: rng.gen_range(6.0..24.0),
                latency_ms: rng.gen_range(15.0..60.0),
                loss_rate: rng.gen_range(0.0..0.10),
            })
        })
        .collect();
    Trace::new(format!("random-cc-{seed}"), segments)
}

/// Adversarial-style "lure-and-drop" trace inside the paper's adversary
/// action range (0.8–4.8 Mbit/s): sustained high-bandwidth phases lure an
/// ABR protocol up the bitrate ladder, then bandwidth collapses to the
/// bottom of the range mid-buffer — the attack pattern RL adversaries
/// discover against buffer- and throughput-predictive protocols (§3).
///
/// This is a *statistical* stand-in for trained-adversary traces: it lets
/// fleet-scale evaluation stream hundreds of thousands of hostile traces
/// without training (or storing) an adversary per trace.
pub fn adversarial_like(seed: u64, cfg: &GenConfig) -> Trace {
    cfg.check();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xadfe_0000_0000_0000);
    let n = (cfg.duration_s / cfg.granularity_s).ceil() as usize;
    let mut segments = Vec::with_capacity(n);
    while segments.len() < n {
        // lure: 3–8 segments near the top of the action range
        let lure = rng.gen_range(3..=8usize);
        let high = rng.gen_range(3.5_f64..4.8);
        for _ in 0..lure {
            if segments.len() >= n {
                break;
            }
            let jitter = rng.gen_range(0.92_f64..1.0);
            segments.push(sane(Segment::bw(cfg.granularity_s, high * jitter, cfg.latency_ms)));
        }
        // drop: 2–5 segments pinned to the bottom of the range
        let drop = rng.gen_range(2..=5usize);
        let low = rng.gen_range(0.8_f64..1.0);
        for _ in 0..drop {
            if segments.len() >= n {
                break;
            }
            segments.push(sane(Segment::bw(cfg.granularity_s, low, cfg.latency_ms)));
        }
    }
    Trace::new(format!("adversarial-like-{seed}"), segments)
}

/// Which generator family a [`TraceStream`] draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceFamily {
    /// [`fcc_like`] broadband traces.
    FccLike,
    /// [`hsdpa_like`] mobile-commute traces.
    HsdpaLike,
    /// [`adversarial_like`] lure-and-drop traces.
    AdversarialLike,
    /// The benign fleet mix: even indices draw [`fcc_like`], odd indices
    /// [`hsdpa_like`] — the FCC/Norway split of the paper's corpora.
    BenignMix,
}

impl TraceFamily {
    /// Stable tag for cache keys and CSV rows.
    pub fn tag(self) -> &'static str {
        match self {
            TraceFamily::FccLike => "fcc_like",
            TraceFamily::HsdpaLike => "hsdpa_like",
            TraceFamily::AdversarialLike => "adversarial_like",
            TraceFamily::BenignMix => "benign_mix",
        }
    }
}

/// A streaming trace corpus: an infinite iterator of synthetic traces
/// generated on demand — hundreds of thousands of traces never exist in
/// memory at once. Trace `i` is a pure function of
/// `(family, base_seed + i, cfg)`, so any consumer (a fleet shard, a
/// resumed run) can regenerate exactly the trace it needs via
/// [`TraceStream::nth_trace`] without coordinating with other consumers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStream {
    family: TraceFamily,
    base_seed: u64,
    cfg: GenConfig,
    next: u64,
}

impl TraceStream {
    /// Stream over `family` with per-trace seeds `base_seed + i`.
    pub fn new(family: TraceFamily, base_seed: u64, cfg: GenConfig) -> Self {
        TraceStream { family, base_seed, cfg, next: 0 }
    }

    /// The stream's family.
    pub fn family(&self) -> TraceFamily {
        self.family
    }

    /// The `i`-th trace of the stream (random access, pure function).
    pub fn nth_trace(&self, i: u64) -> Trace {
        let seed = self.base_seed.wrapping_add(i);
        match self.family {
            TraceFamily::FccLike => fcc_like(seed, &self.cfg),
            TraceFamily::HsdpaLike => hsdpa_like(seed, &self.cfg),
            TraceFamily::AdversarialLike => adversarial_like(seed, &self.cfg),
            TraceFamily::BenignMix => {
                if i.is_multiple_of(2) {
                    fcc_like(seed, &self.cfg)
                } else {
                    hsdpa_like(seed, &self.cfg)
                }
            }
        }
    }
}

impl Iterator for TraceStream {
    type Item = Trace;

    /// Infinite: yields [`TraceStream::nth_trace`] of `0, 1, 2, …` in turn.
    fn next(&mut self) -> Option<Trace> {
        let t = self.nth_trace(self.next);
        self.next += 1;
        Some(t)
    }
}

/// Generate a whole corpus by seed offsets.
pub fn corpus(
    kind: impl Fn(u64, &GenConfig) -> Trace,
    base_seed: u64,
    count: usize,
    cfg: &GenConfig,
) -> Vec<Trace> {
    (0..count).map(|i| kind(base_seed + i as u64, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn fcc_like_is_benign() {
        let cfg = GenConfig::default();
        let traces = corpus(fcc_like, 0, 40, &cfg);
        let means: Vec<f64> = traces.iter().map(|t| t.mean_bandwidth()).collect();
        let overall = nn_mean(&means);
        assert!(overall > 1.2 && overall < 4.5, "fcc-like mean bw = {overall}");
        for t in &traces {
            t.validate();
            let st = TraceStats::of(t);
            assert!(st.min_bandwidth >= 0.2, "no outages in broadband: {}", st.min_bandwidth);
        }
    }

    #[test]
    fn hsdpa_like_is_harsh() {
        let cfg = GenConfig::default();
        let traces = corpus(hsdpa_like, 0, 40, &cfg);
        let means: Vec<f64> = traces.iter().map(|t| t.mean_bandwidth()).collect();
        let overall = nn_mean(&means);
        assert!(overall < 2.5, "hsdpa-like mean bw = {overall}");
        // at least some traces must contain near-outage conditions
        let outage_traces = traces.iter().filter(|t| TraceStats::of(t).min_bandwidth < 0.2).count();
        assert!(outage_traces > 10, "only {outage_traces}/40 traces have outages");
    }

    #[test]
    fn corpora_are_distinct() {
        let cfg = GenConfig::default();
        let fcc = corpus(fcc_like, 0, 30, &cfg);
        let mobile = corpus(hsdpa_like, 0, 30, &cfg);
        let fm = nn_mean(&fcc.iter().map(|t| t.mean_bandwidth()).collect::<Vec<_>>());
        let mm = nn_mean(&mobile.iter().map(|t| t.mean_bandwidth()).collect::<Vec<_>>());
        assert!(fm > mm * 1.3, "broadband ({fm}) must be clearly richer than 3G ({mm})");
    }

    #[test]
    fn random_traces_span_action_space() {
        let t = random_abr_trace(3, 100, 4.0, 40.0);
        assert_eq!(t.segments.len(), 100);
        for s in &t.segments {
            assert!(s.bandwidth_mbps >= 0.8 && s.bandwidth_mbps <= 4.8);
        }
        let cc = random_cc_trace(3, 1000);
        for s in &cc.segments {
            assert!(s.bandwidth_mbps >= 6.0 && s.bandwidth_mbps <= 24.0);
            assert!(s.latency_ms >= 15.0 && s.latency_ms <= 60.0);
            assert!(s.loss_rate <= 0.10);
        }
    }

    #[test]
    fn adversarial_like_lures_and_drops() {
        let cfg = GenConfig::default();
        for seed in 0..20u64 {
            let t = adversarial_like(seed, &cfg);
            t.validate();
            // every bandwidth stays inside the adversary's action range
            for s in &t.segments {
                assert!(
                    s.bandwidth_mbps >= 0.7 && s.bandwidth_mbps <= 4.8,
                    "bw {} outside action range",
                    s.bandwidth_mbps
                );
            }
            // both phases must occur: a lure above 3 Mbit/s and a drop below 1
            assert!(t.segments.iter().any(|s| s.bandwidth_mbps > 3.0), "seed {seed}: no lure");
            assert!(t.segments.iter().any(|s| s.bandwidth_mbps < 1.0), "seed {seed}: no drop");
        }
    }

    #[test]
    fn trace_stream_is_lazy_pure_and_mixed() {
        let cfg = GenConfig::default();
        let stream = TraceStream::new(TraceFamily::BenignMix, 100, cfg.clone());
        // iterator agrees with random access, trace by trace
        for (i, t) in stream.clone().take(6).enumerate() {
            assert_eq!(t, stream.nth_trace(i as u64));
        }
        // even ids are fcc-like, odd ids hsdpa-like
        assert_eq!(stream.nth_trace(0), fcc_like(100, &cfg));
        assert_eq!(stream.nth_trace(1), hsdpa_like(101, &cfg));
        // random access is independent of iteration order
        let mut it = TraceStream::new(TraceFamily::AdversarialLike, 7, cfg.clone());
        let direct = it.nth_trace(3);
        assert_eq!(it.nth(3).unwrap(), direct);
        // the stream never ends (spot-check a far index works)
        let far = TraceStream::new(TraceFamily::FccLike, 0, cfg).nth_trace(250_000);
        far.validate();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "granularity_s")]
    fn degenerate_config_asserts_in_debug() {
        let cfg = GenConfig { duration_s: 320.0, granularity_s: 0.0, latency_ms: 40.0 };
        fcc_like(0, &cfg);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn degenerate_segments_clamped_in_release() {
        // release builds scrub instead of asserting: zero/negative/NaN
        // inputs come out at the floors, never degenerate
        let s = sane(Segment {
            duration_s: 0.0,
            bandwidth_mbps: -1.0,
            latency_ms: f64::NAN,
            loss_rate: 2.0,
        });
        assert!(s.duration_s >= MIN_DURATION_S);
        assert!(s.bandwidth_mbps >= MIN_BANDWIDTH_MBPS);
        assert!(s.latency_ms >= 0.0 && s.latency_ms.is_finite());
        assert!((0.0..=1.0).contains(&s.loss_rate));
    }

    #[test]
    fn sane_is_bit_transparent_for_physical_segments() {
        let seg = Segment::bw(4.0, 2.5, 40.0);
        assert_eq!(sane(seg), seg);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        assert_eq!(fcc_like(9, &cfg), fcc_like(9, &cfg));
        assert_eq!(hsdpa_like(9, &cfg), hsdpa_like(9, &cfg));
        assert_ne!(fcc_like(9, &cfg), fcc_like(10, &cfg));
    }

    fn nn_mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
