//! Offline, in-tree substitute for `criterion` (the subset this workspace
//! uses): `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology (simplified from upstream): a short warm-up, then batches of
//! iterations are timed until a wall-clock budget is exhausted; the report
//! prints the median, minimum and maximum per-iteration time. Respects
//! `--bench` CLI filters well enough for `cargo bench <name>` to select
//! benchmarks, and `CRITERION_MEASURE_MS`/`CRITERION_WARMUP_MS` tune the
//! budgets (e.g. for CI smoke runs).

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    measure_budget: Duration,
    warmup_budget: Duration,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // warm-up: let caches/allocators settle, estimate per-iter cost
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warmup_budget {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(iters.max(1) as u32)
            .unwrap_or(Duration::from_nanos(1));
        // batch enough iterations that one sample is ≥ ~50 µs of work
        let batch = (Duration::from_micros(50).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u32;
        let start = Instant::now();
        while start.elapsed() < self.measure_budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup_budget {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let start = Instant::now();
        let mut spent = Duration::ZERO;
        while spent < self.measure_budget && start.elapsed() < 4 * self.measure_budget {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            let dt = t0.elapsed();
            self.samples.push(dt);
            spent += dt;
        }
    }
}

/// Benchmark registry/driver (subset of upstream `Criterion`).
pub struct Criterion {
    filter: Option<String>,
    measure_budget: Duration,
    warmup_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = |var: &str, default_ms: u64| {
            Duration::from_millis(
                std::env::var(var).ok().and_then(|s| s.parse().ok()).unwrap_or(default_ms),
            )
        };
        Criterion {
            filter: None,
            measure_budget: ms("CRITERION_MEASURE_MS", 400),
            warmup_budget: ms("CRITERION_WARMUP_MS", 100),
        }
    }
}

impl Criterion {
    /// Honor `cargo bench -- <filter>`-style positional filters.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut positional = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                // harness flags libtest/criterion accept; ignore values
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--exact" => {}
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = it.next();
                }
                flag if flag.starts_with("--") => {}
                pos => positional.push(pos.to_string()),
            }
        }
        self.filter = positional.into_iter().next();
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            measure_budget: self.measure_budget,
            warmup_budget: self.warmup_budget,
        };
        f(&mut bencher);
        report(name, &samples);
        self
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<44} (no samples collected)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{name:<44} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into one group runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        std::env::set_var("CRITERION_MEASURE_MS", "20");
        std::env::set_var("CRITERION_WARMUP_MS", "5");
        let mut c = Criterion::default();
        let mut ran = 0_u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100).sum::<u64>())
            })
        });
        assert!(ran > 0, "routine never executed");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        std::env::set_var("CRITERION_WARMUP_MS", "2");
        let mut c = Criterion::default();
        let mut setups = 0_u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1_u64; 64]
                },
                |v| std::hint::black_box(v.iter().sum::<u64>()),
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 0, "setup never executed");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
    }
}
