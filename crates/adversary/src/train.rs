//! Training entry points for the adversaries, with the paper's network
//! architectures and PPO settings.

use crate::abr_env::{AbrAdversaryEnv, OBS_DIM};
use crate::cc_env::CcAdversaryEnv;
use crate::cross_env::CrossTrafficEnv;
use abr::AbrPolicy;
use rl::{Checkpointer, Ppo, PpoConfig, TrainError, TrainReport};
use std::path::PathBuf;

/// Knobs for adversary training.
#[derive(Debug, Clone)]
pub struct AdversaryTrainConfig {
    /// Total environment steps (paper: ~600 k; scale down for CI).
    pub total_steps: usize,
    /// PPO settings.
    pub ppo: PpoConfig,
    /// Initial exploration std of the Gaussian policy.
    pub init_std: f64,
    /// When set, training is crash-safe: a checkpoint is written to this
    /// path every [`checkpoint_every`](Self::checkpoint_every) iterations
    /// and a rerun auto-resumes from it bit-identically (the file is the
    /// unit of recovery — delete it to start over).
    pub checkpoint_path: Option<PathBuf>,
    /// Iterations between checkpoint writes (only with
    /// [`checkpoint_path`](Self::checkpoint_path); clamped to ≥ 1).
    pub checkpoint_every: usize,
}

impl Default for AdversaryTrainConfig {
    fn default() -> Self {
        AdversaryTrainConfig {
            total_steps: 60_000,
            ppo: PpoConfig {
                n_steps: 1920, // 40 ABR episodes per iteration
                minibatch_size: 64,
                epochs: 6,
                lr: 3e-4,
                ent_coef: 0.002,
                ..PpoConfig::default()
            },
            init_std: 0.8,
            checkpoint_path: None,
            checkpoint_every: 1,
        }
    }
}

/// Train an ABR adversary against `target` (paper §3: two hidden layers of
/// 32 and 16 neurons). Returns the trainer (policy + normalization) and the
/// per-iteration reports.
///
/// Rollouts go through the `exec`-backed [`Ppo::train_vec`] path:
/// `cfg.ppo.n_envs` environment clones collect in parallel, merged
/// deterministically. The default `n_envs = 1` is bit-identical to the
/// serial trainer.
pub fn train_abr_adversary<P: AbrPolicy + Clone + Send>(
    env: &mut AbrAdversaryEnv<P>,
    cfg: &AdversaryTrainConfig,
) -> (Ppo, Vec<TrainReport>) {
    try_train_abr_adversary(env, cfg)
        .unwrap_or_else(|e| panic!("ABR adversary training failed: {e}"))
}

/// Fallible [`train_abr_adversary`]: surfaces divergence, worker, and
/// checkpoint errors as [`TrainError`] instead of panicking. With
/// `cfg.checkpoint_path` set, training runs through
/// [`Ppo::train_checkpointed`] — crash-safe and auto-resuming.
pub fn try_train_abr_adversary<P: AbrPolicy + Clone + Send>(
    env: &mut AbrAdversaryEnv<P>,
    cfg: &AdversaryTrainConfig,
) -> Result<(Ppo, Vec<TrainReport>), TrainError> {
    let mut ppo = Ppo::new_gaussian(OBS_DIM, 1, &[32, 16], cfg.init_std, cfg.ppo.clone());
    let reports = run_training(&mut ppo, env, cfg)?;
    Ok((ppo, reports))
}

/// Train a CC adversary (paper §4: "a simple neural network with only one
/// hidden layer of 4 neurons").
///
/// Like [`train_abr_adversary`], collection runs through
/// [`Ppo::train_vec`] with `cfg.ppo.n_envs` parallel env clones.
pub fn train_cc_adversary(
    env: &mut CcAdversaryEnv,
    cfg: &AdversaryTrainConfig,
) -> (Ppo, Vec<TrainReport>) {
    try_train_cc_adversary(env, cfg).unwrap_or_else(|e| panic!("CC adversary training failed: {e}"))
}

/// Fallible [`train_cc_adversary`], with the same crash-safe checkpoint
/// wiring as [`try_train_abr_adversary`].
pub fn try_train_cc_adversary(
    env: &mut CcAdversaryEnv,
    cfg: &AdversaryTrainConfig,
) -> Result<(Ppo, Vec<TrainReport>), TrainError> {
    let mut ppo = Ppo::new_gaussian(2, 3, &[4], cfg.init_std, cfg.ppo.clone());
    let reports = run_training(&mut ppo, env, cfg)?;
    Ok((ppo, reports))
}

/// Train a cross-traffic adversary (the multi-flow variant: the policy
/// drives a competing sender's rate at a shared bottleneck). Same tiny
/// 4-neuron architecture as the single-flow CC adversary — the attack
/// surface is one scalar rate, not a rich observation space.
pub fn train_cross_adversary(
    env: &mut CrossTrafficEnv,
    cfg: &AdversaryTrainConfig,
) -> (Ppo, Vec<TrainReport>) {
    try_train_cross_adversary(env, cfg)
        .unwrap_or_else(|e| panic!("cross-traffic adversary training failed: {e}"))
}

/// Fallible [`train_cross_adversary`], with the same crash-safe checkpoint
/// wiring as [`try_train_abr_adversary`].
pub fn try_train_cross_adversary(
    env: &mut CrossTrafficEnv,
    cfg: &AdversaryTrainConfig,
) -> Result<(Ppo, Vec<TrainReport>), TrainError> {
    let mut ppo = Ppo::new_gaussian(3, 1, &[4], cfg.init_std, cfg.ppo.clone());
    let reports = run_training(&mut ppo, env, cfg)?;
    Ok((ppo, reports))
}

/// Shared training driver: checkpointed when a path is configured,
/// plain vectorized otherwise.
fn run_training<E>(
    ppo: &mut Ppo,
    env: &mut E,
    cfg: &AdversaryTrainConfig,
) -> Result<Vec<TrainReport>, TrainError>
where
    E: rl::Env + Clone + Send + rl::Snapshot,
{
    match &cfg.checkpoint_path {
        Some(path) => {
            let ck = Checkpointer::new(path.clone(), cfg.checkpoint_every);
            ppo.train_checkpointed(env, cfg.total_steps, &ck)
        }
        None => ppo.try_train_vec(env, cfg.total_steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abr_env::AbrAdversaryConfig;
    use abr::{BufferBased, Video};

    /// The core claim of the framework, in miniature: a briefly trained
    /// adversary hurts BB more than its own random initialization does.
    #[test]
    fn abr_adversary_learns_to_hurt_bb() {
        let mut env = AbrAdversaryEnv::new(
            BufferBased::pensieve_defaults(),
            Video::cbr(),
            AbrAdversaryConfig::default(),
        );
        let cfg = AdversaryTrainConfig {
            total_steps: 12_000,
            ppo: PpoConfig {
                n_steps: 960,
                minibatch_size: 96,
                epochs: 6,
                lr: 1e-3,
                seed: 11,
                ..PpoConfig::default()
            },
            ..AdversaryTrainConfig::default()
        };
        let (_, reports) = train_abr_adversary(&mut env, &cfg);
        let early = reports[0].mean_step_reward;
        let late = reports.last().unwrap().mean_step_reward;
        assert!(
            late > early + 0.05,
            "adversary reward should improve with training: {early} -> {late}"
        );
    }
}
