//! The §2.3 pipeline: making an RL protocol more robust with adversarial
//! traces.
//!
//! "(1) train the protocol of interest, (2) train an adversary against it,
//! (3) use the trained adversary to generate traces, and (4) continue the
//! protocol's training with the new adversarial traces in its training
//! dataset." The traces are injected late (at 90 % or 70 % of training) "to
//! avoid over-fitting to adversarial examples".

use crate::abr_env::{AbrAdversaryConfig, AbrAdversaryEnv};
use crate::trace_gen::{abr_traces_to_corpus, try_generate_abr_traces_with};
use crate::train::{try_train_abr_adversary, AdversaryTrainConfig};
use abr::env::AbrTrainEnv;
use abr::protocols::pensieve::PENSIEVE_OBS_DIM;
use abr::{Pensieve, QoeParams, Video};
use rl::{Checkpointer, Ppo, PpoConfig, TrainError};
use std::path::PathBuf;
use traces::Trace;

/// Configuration of the adversarial-training experiment (Fig. 4).
#[derive(Debug, Clone)]
pub struct RobustifyConfig {
    /// Total Pensieve training steps.
    pub total_steps: usize,
    /// Fraction of training completed before adversarial traces are
    /// injected (the paper evaluates 0.9 and 0.7).
    pub inject_at: f64,
    /// How many adversarial traces to generate and add.
    pub n_adv_traces: usize,
    /// Adversary training budget.
    pub adversary: AdversaryTrainConfig,
    /// Pensieve PPO settings.
    pub pensieve_ppo: PpoConfig,
    /// Adversary environment settings (QoE, latency, reward window).
    pub adv_env: AbrAdversaryConfig,
    pub seed: u64,
    /// When set, every training leg of the pipeline (baseline, partial
    /// protocol, adversary, resumed protocol) writes crash-safe
    /// checkpoints into this directory and auto-resumes from them on a
    /// rerun. Delete the directory to start the experiment over.
    pub checkpoint_dir: Option<PathBuf>,
    /// Iterations between checkpoint writes for every leg.
    pub checkpoint_every: usize,
}

impl RobustifyConfig {
    /// Checkpointer for one named training leg, if checkpointing is on.
    fn checkpointer(&self, name: &str) -> Option<Checkpointer> {
        self.checkpoint_dir.as_ref().map(|dir| {
            let _ = std::fs::create_dir_all(dir);
            Checkpointer::new(dir.join(format!("{name}.ckpt")), self.checkpoint_every)
        })
    }
}

impl Default for RobustifyConfig {
    fn default() -> Self {
        RobustifyConfig {
            total_steps: 60_000,
            inject_at: 0.9,
            n_adv_traces: 32,
            adversary: AdversaryTrainConfig::default(),
            pensieve_ppo: PpoConfig {
                n_steps: 1920,
                minibatch_size: 96,
                epochs: 5,
                lr: 3e-4,
                ent_coef: 0.01,
                ..PpoConfig::default()
            },
            adv_env: AbrAdversaryConfig::default(),
            seed: 0,
            checkpoint_dir: None,
            checkpoint_every: 5,
        }
    }
}

/// Run one training leg, checkpointed when configured.
fn train_leg(
    ppo: &mut Ppo,
    env: &mut AbrTrainEnv,
    steps: usize,
    ck: Option<Checkpointer>,
) -> Result<(), TrainError> {
    match ck {
        Some(ck) => ppo.train_checkpointed(env, steps, &ck).map(|_| ()),
        None => ppo.try_train_vec(env, steps).map(|_| ()),
    }
}

/// What the pipeline produced.
pub struct RobustifyOutcome {
    /// Pensieve trained without adversarial traces (the baseline).
    pub baseline: Pensieve,
    /// Pensieve whose training was resumed with adversarial traces.
    pub robust: Pensieve,
    /// The adversarial traces that were injected (in corpus form).
    pub adv_traces: Vec<Trace>,
}

fn new_pensieve_trainer(cfg: &RobustifyConfig) -> Ppo {
    let ppo_cfg = PpoConfig { seed: cfg.seed, ..cfg.pensieve_ppo.clone() };
    Ppo::new_categorical(PENSIEVE_OBS_DIM, 6, &[64, 32], ppo_cfg)
}

/// Run the full §2.3 pipeline on `corpus`, returning the baseline and the
/// adversarially robustified Pensieve.
///
/// Both models consume the same total training budget; the robust model's
/// final `(1 − inject_at)` fraction runs on the corpus *plus* the
/// adversarial traces.
pub fn robustify_pensieve(
    corpus: Vec<Trace>,
    video: Video,
    qoe: QoeParams,
    cfg: &RobustifyConfig,
) -> RobustifyOutcome {
    try_robustify_pensieve(corpus, video, qoe, cfg)
        .unwrap_or_else(|e| panic!("robustify pipeline failed: {e}"))
}

/// Fallible [`robustify_pensieve`]: divergence, worker, and checkpoint
/// failures surface as [`TrainError`]. With `cfg.checkpoint_dir` set, a
/// crashed run picks up from its last checkpoints when re-invoked with
/// the same inputs.
pub fn try_robustify_pensieve(
    corpus: Vec<Trace>,
    video: Video,
    qoe: QoeParams,
    cfg: &RobustifyConfig,
) -> Result<RobustifyOutcome, TrainError> {
    assert!((0.0..1.0).contains(&cfg.inject_at), "inject_at must be in [0,1)");
    // baseline: the full budget on the clean corpus
    let mut baseline_env = AbrTrainEnv::new(corpus.clone(), video.clone(), qoe.clone());
    let mut baseline_ppo = new_pensieve_trainer(cfg);
    train_leg(
        &mut baseline_ppo,
        &mut baseline_env,
        cfg.total_steps,
        cfg.checkpointer("pensieve-baseline"),
    )?;
    let baseline = Pensieve::new(baseline_ppo.policy.clone(), baseline_ppo.obs_norm.clone());

    // stages 1-4 (§2.3)
    let (robust, adv_traces) = try_run_robust_branch(corpus, video, qoe, cfg)?;
    Ok(RobustifyOutcome { baseline, robust, adv_traces })
}

/// Run the pipeline once per injection point, training the (identical)
/// baseline only once. Returns the baseline and, per injection fraction,
/// the robustified model with its injected traces.
///
/// The per-injection-point branches are independent end-to-end training
/// runs, so they execute in parallel via [`exec::par_map`]; results come
/// back in `inject_points` order regardless of scheduling.
pub fn robustify_variants(
    corpus: Vec<Trace>,
    video: Video,
    qoe: QoeParams,
    cfg: &RobustifyConfig,
    inject_points: &[f64],
) -> (Pensieve, Vec<(f64, Pensieve, Vec<Trace>)>) {
    try_robustify_variants(corpus, video, qoe, cfg, inject_points)
        .unwrap_or_else(|e| panic!("robustify variants failed: {e}"))
}

/// Fallible [`robustify_variants`]: a panicking branch is reported as a
/// structured error (lowest branch index wins) instead of tearing down
/// the process, and divergence/checkpoint failures propagate.
#[allow(clippy::type_complexity)]
pub fn try_robustify_variants(
    corpus: Vec<Trace>,
    video: Video,
    qoe: QoeParams,
    cfg: &RobustifyConfig,
    inject_points: &[f64],
) -> Result<(Pensieve, Vec<(f64, Pensieve, Vec<Trace>)>), TrainError> {
    let mut baseline_env = AbrTrainEnv::new(corpus.clone(), video.clone(), qoe.clone());
    let mut baseline_ppo = new_pensieve_trainer(cfg);
    train_leg(
        &mut baseline_ppo,
        &mut baseline_env,
        cfg.total_steps,
        cfg.checkpointer("pensieve-baseline"),
    )?;
    let baseline = Pensieve::new(baseline_ppo.policy.clone(), baseline_ppo.obs_norm.clone());

    let variants = exec::try_par_map(
        inject_points.to_vec(),
        exec::default_workers(),
        // fail fast: each branch is a full training run, and a panic
        // there is deterministic, so retrying would just repeat it
        &fault::Backoff::none(0),
        |_, inject_at| {
            let cfg = RobustifyConfig { inject_at, ..cfg.clone() };
            try_run_robust_branch(corpus.clone(), video.clone(), qoe.clone(), &cfg)
                .map(|out| (inject_at, out.0, out.1))
        },
    )?
    .into_iter()
    .collect::<Result<Vec<_>, TrainError>>()?;
    Ok((baseline, variants))
}

/// Stages 1–4 of the pipeline (everything except the baseline).
///
/// Each leg gets its own checkpoint file keyed by the injection fraction,
/// so [`robustify_variants`] branches never collide.
fn try_run_robust_branch(
    corpus: Vec<Trace>,
    video: Video,
    qoe: QoeParams,
    cfg: &RobustifyConfig,
) -> Result<(Pensieve, Vec<Trace>), TrainError> {
    let phase1 = (cfg.total_steps as f64 * cfg.inject_at) as usize;
    let pct = (cfg.inject_at * 100.0).round() as u32;
    let mut env = AbrTrainEnv::new(corpus.clone(), video.clone(), qoe.clone());
    let mut ppo = new_pensieve_trainer(cfg);
    train_leg(&mut ppo, &mut env, phase1, cfg.checkpointer(&format!("pensieve-phase1-{pct}")))?;

    let partial = Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone());
    let mut adv_env = AbrAdversaryEnv::new(partial, video.clone(), cfg.adv_env.clone());
    let mut adv_cfg = cfg.adversary.clone();
    if let Some(ck) = cfg.checkpointer(&format!("adversary-{pct}")) {
        adv_cfg.checkpoint_path = Some(ck.path);
        adv_cfg.checkpoint_every = cfg.checkpoint_every;
    }
    let (adversary, _) = try_train_abr_adversary(&mut adv_env, &adv_cfg)?;

    let raw_traces = try_generate_abr_traces_with(
        &mut adv_env,
        &adversary.policy,
        adversary.obs_norm.as_ref(),
        cfg.n_adv_traces,
        false,
        cfg.seed ^ 0xad,
    )?;
    let adv_traces =
        abr_traces_to_corpus(&raw_traces, &video, cfg.adv_env.latency_ms, "adversarial");

    let mut augmented = corpus;
    augmented.extend(adv_traces.iter().cloned());
    env.set_corpus(augmented);
    train_leg(
        &mut ppo,
        &mut env,
        cfg.total_steps - phase1,
        cfg.checkpointer(&format!("pensieve-phase2-{pct}")),
    )?;
    Ok((Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone()), adv_traces))
}

/// Evaluate a Pensieve model's per-video mean QoE over a test corpus.
///
/// Traces replay independently, so the corpus is fanned out over
/// [`exec::par_map`] (each worker replays on its own model clone); the
/// QoE vector is in corpus order, identical to a serial replay.
pub fn eval_pensieve(
    model: &Pensieve,
    test_corpus: &[Trace],
    video: &Video,
    qoe: &QoeParams,
) -> Vec<f64> {
    use abr::{mean_qoe, run_session, TraceNetwork};
    exec::par_map(test_corpus.to_vec(), exec::default_workers(), |_, t| {
        let mut model = model.clone();
        let mut net = TraceNetwork::new(&t);
        mean_qoe(&run_session(video, &mut model, &mut net, qoe))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::GenConfig;

    /// End-to-end smoke test of the pipeline at miniature scale: it must
    /// run, produce the requested number of traces, and both models must
    /// stream competently.
    #[test]
    fn pipeline_produces_models_and_traces() {
        let gen_cfg = GenConfig::default();
        let corpus: Vec<Trace> = (0..6).map(|i| traces::fcc_like(i, &gen_cfg)).collect();
        let cfg = RobustifyConfig {
            total_steps: 6_000,
            inject_at: 0.7,
            n_adv_traces: 4,
            adversary: AdversaryTrainConfig {
                total_steps: 2_000,
                ppo: PpoConfig {
                    n_steps: 480,
                    minibatch_size: 96,
                    epochs: 3,
                    ..PpoConfig::default()
                },
                ..AdversaryTrainConfig::default()
            },
            pensieve_ppo: PpoConfig {
                n_steps: 480,
                minibatch_size: 96,
                epochs: 3,
                ..PpoConfig::default()
            },
            ..RobustifyConfig::default()
        };
        let video = Video::cbr();
        let out = robustify_pensieve(corpus.clone(), video.clone(), QoeParams::default(), &cfg);
        assert_eq!(out.adv_traces.len(), 4);
        let qoe = QoeParams::default();
        let base = eval_pensieve(&out.baseline, &corpus, &video, &qoe);
        let robust = eval_pensieve(&out.robust, &corpus, &video, &qoe);
        assert_eq!(base.len(), 6);
        assert_eq!(robust.len(), 6);
        // tiny budgets can't guarantee improvement; sanity only: both
        // models must at least stream without cratering
        assert!(nn::ops::mean(&base) > -2.0, "baseline {base:?}");
        assert!(nn::ops::mean(&robust) > -2.0, "robust {robust:?}");
    }
}
