//! The adversary environment for adaptive video streaming (paper §3).
//!
//! Each adversary action is a choice of bandwidth in 0.8–4.8 Mbit/s for the
//! next chunk download. The adversary observes the protocol's reaction —
//! "the bitrate chosen by the protocol for the previous chunk, the client
//! buffer occupancy, the possible sizes of the next chunk, the number of
//! remaining chunks, and the throughput and download time for the last
//! downloaded video chunk" — with a history of the last 10 observations as
//! its state.
//!
//! Reward (Eq. 1 instantiated for ABR): `r_opt` is the highest possible QoE
//! over the last 4 network changes (computed exactly by
//! [`abr::windowed_optimal_qoe`]), `r_protocol` is the target's QoE over
//! the same window, and `p_smoothing` is the absolute difference between
//! the last two chosen bandwidths.

use abr::{AbrPolicy, Network, Player, QoeParams, Video};
use nn::ops::{scale_from_unit, scale_to_unit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{Action, ActionSpace, Env, Snapshot, Step};
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// Features per history entry: bitrate, buffer, 6 chunk sizes, remaining,
/// throughput, download time.
pub const OBS_FIELDS: usize = 11;
/// History length (paper: "the history of the last 10 observations").
pub const OBS_HISTORY: usize = 10;
/// Total observation dimension.
pub const OBS_DIM: usize = OBS_FIELDS * OBS_HISTORY;

/// Bandwidth action range, Mbit/s (paper §3).
pub const BW_MIN_MBPS: f64 = 0.8;
pub const BW_MAX_MBPS: f64 = 4.8;

/// The policy acts in a normalized `[-1, 1]` space (the stable-baselines
/// convention the paper's PPO uses); the environment maps it affinely onto
/// the physical range and clips — "exploration and clipping done by PPO
/// will return the actions to the acceptable range".
pub fn bandwidth_from_action(raw: f64) -> f64 {
    scale_from_unit(raw, BW_MIN_MBPS, BW_MAX_MBPS)
}

/// Inverse of [`bandwidth_from_action`] (for tests and hand-built traces).
pub fn action_for_bandwidth(bw_mbps: f64) -> Action {
    Action::Continuous(vec![scale_to_unit(bw_mbps, BW_MIN_MBPS, BW_MAX_MBPS)])
}

/// Adversary environment configuration.
#[derive(Debug, Clone)]
pub struct AbrAdversaryConfig {
    /// Reward window: "the last 4 network changes".
    pub window: usize,
    /// Coefficient on the smoothing penalty `|bw_t − bw_{t−1}|`.
    pub smoothing_coef: f64,
    /// Request latency per chunk, ms (Pensieve's 80 ms link RTT).
    pub latency_ms: f64,
    /// QoE metric (the paper's `QoE_lin` by default).
    pub qoe: QoeParams,
}

impl Default for AbrAdversaryConfig {
    fn default() -> Self {
        AbrAdversaryConfig {
            window: 4,
            smoothing_coef: 1.0,
            latency_ms: 80.0,
            qoe: QoeParams::default(),
        }
    }
}

/// A per-chunk bandwidth schedule as an [`abr::Network`]: chunk `i`
/// downloads at `bws[i]`. This is both the adversary's live interface and
/// the replay mechanism for its recorded traces.
#[derive(Debug, Clone)]
pub struct ChunkNetwork {
    bws: Vec<f64>,
    latency_ms: f64,
    next: usize,
}

impl ChunkNetwork {
    /// A schedule may start empty (the live adversary pushes bandwidths as
    /// it acts); downloading from an empty schedule panics.
    pub fn new(bws: Vec<f64>, latency_ms: f64) -> Self {
        assert!(bws.iter().all(|&b| b > 0.0), "bandwidths must be positive");
        ChunkNetwork { bws, latency_ms, next: 0 }
    }

    /// Append the bandwidth for the next chunk (live adversary use).
    pub fn push(&mut self, bw_mbps: f64) {
        assert!(bw_mbps > 0.0);
        self.bws.push(bw_mbps);
    }

    /// Bandwidth that will serve the next download. Past the end of the
    /// schedule, the final bandwidth persists (a trace shorter than the
    /// video degrades gracefully). Panics on an empty schedule.
    pub fn upcoming_bandwidth(&self) -> f64 {
        *self
            .bws
            .get(self.next)
            .or(self.bws.last())
            .expect("no bandwidth scheduled before the first download")
    }

    pub fn schedule(&self) -> &[f64] {
        &self.bws
    }
}

impl Network for ChunkNetwork {
    fn download(&mut self, bytes: f64) -> f64 {
        let bw = self.upcoming_bandwidth();
        self.next += 1;
        bytes * 8.0 / (bw * 1e6)
    }

    fn latency_s(&self) -> f64 {
        self.latency_ms / 1000.0
    }

    fn advance(&mut self, _dt: f64) {}
}

/// Pre-chunk state snapshot for the windowed-optimum reward.
#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    buffer_before_s: f64,
    last_quality_before: Option<usize>,
    chunk_index: usize,
    bw_mbps: f64,
    protocol_qoe: f64,
}

/// The online ABR adversary environment (implements [`rl::Env`]).
///
/// Owns the target protocol, the video, and the streaming session. One
/// episode is one full video; one step is one chunk. `Clone` (for
/// `Clone` targets) yields an independent session, so the env can be
/// fanned out across [`exec`]-driven rollout workers.
#[derive(Debug, Clone)]
pub struct AbrAdversaryEnv<P: AbrPolicy> {
    target: P,
    video: Video,
    cfg: AbrAdversaryConfig,
    player: Option<Player>,
    net: ChunkNetwork,
    history: VecDeque<[f64; OBS_FIELDS]>,
    window: VecDeque<WindowEntry>,
    last_bw: Option<f64>,
    /// Bandwidths chosen this episode (the adversarial trace).
    episode_bws: Vec<f64>,
    /// Per-chunk protocol QoE this episode.
    episode_qoe: Vec<f64>,
}

impl<P: AbrPolicy> AbrAdversaryEnv<P> {
    pub fn new(target: P, video: Video, cfg: AbrAdversaryConfig) -> Self {
        let latency = cfg.latency_ms;
        AbrAdversaryEnv {
            target,
            video,
            cfg,
            player: None,
            net: ChunkNetwork::new(Vec::new(), latency),
            history: VecDeque::with_capacity(OBS_HISTORY),
            window: VecDeque::new(),
            last_bw: None,
            episode_bws: Vec::new(),
            episode_qoe: Vec::new(),
        }
    }

    /// The bandwidth trace of the current/last episode.
    pub fn episode_trace(&self) -> &[f64] {
        &self.episode_bws
    }

    /// Per-chunk protocol QoE of the current/last episode.
    pub fn episode_qoe(&self) -> &[f64] {
        &self.episode_qoe
    }

    /// Mutable access to the target (e.g. to reset protocol state).
    pub fn target_mut(&mut self) -> &mut P {
        &mut self.target
    }

    pub fn video(&self) -> &Video {
        &self.video
    }

    fn flat_observation(&self) -> Vec<f64> {
        let mut obs = vec![0.0; OBS_DIM];
        // most recent entry last, zero-padded at the front
        let offset = OBS_HISTORY - self.history.len();
        for (i, entry) in self.history.iter().enumerate() {
            obs[(offset + i) * OBS_FIELDS..(offset + i + 1) * OBS_FIELDS].copy_from_slice(entry);
        }
        obs
    }

    fn record_observation(&mut self) {
        let player = self.player.as_ref().expect("player exists");
        let o = player.observation(&self.net);
        let max_rate = *o.bitrates_mbps.last().expect("ladder");
        let mut e = [0.0; OBS_FIELDS];
        e[0] = o.last_quality.map(|q| o.bitrates_mbps[q] / max_rate).unwrap_or(0.0);
        e[1] = o.buffer_s / 10.0;
        for (k, s) in o.next_sizes.iter().take(6).enumerate() {
            e[2 + k] = s / 1e6;
        }
        e[8] = o.chunks_remaining as f64 / o.total_chunks.max(1) as f64;
        e[9] = o.throughput_mbps.last().copied().unwrap_or(0.0);
        e[10] = o.download_s.last().copied().unwrap_or(0.0) / 10.0;
        if self.history.len() == OBS_HISTORY {
            self.history.pop_front();
        }
        self.history.push_back(e);
    }

    /// Eq. 1 over the last `window` chunks.
    fn window_reward(&self, smooth_penalty: f64) -> f64 {
        if self.window.is_empty() {
            return -smooth_penalty;
        }
        let first = self.window.front().expect("non-empty window");
        let bws: Vec<f64> = self.window.iter().map(|w| w.bw_mbps).collect();
        let r_opt = abr::windowed_optimal_qoe(
            &self.video,
            &self.cfg.qoe,
            first.chunk_index,
            &bws,
            self.cfg.latency_ms / 1000.0,
            first.buffer_before_s,
            first.last_quality_before,
        );
        let r_proto: f64 = self.window.iter().map(|w| w.protocol_qoe).sum();
        (r_opt - r_proto) / self.window.len() as f64 - smooth_penalty
    }
}

impl<P: AbrPolicy> Env for AbrAdversaryEnv<P> {
    fn obs_dim(&self) -> usize {
        OBS_DIM
    }

    fn action_space(&self) -> ActionSpace {
        // normalized action space; see [`bandwidth_from_action`]
        ActionSpace::Continuous { low: vec![-1.0], high: vec![1.0] }
    }

    fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
        self.player = Some(Player::new(&self.video, self.cfg.qoe.clone()));
        // empty schedule: the adversary supplies the bandwidth before each
        // download
        self.net = ChunkNetwork::new(Vec::new(), self.cfg.latency_ms);
        self.target.reset();
        self.history.clear();
        self.window.clear();
        self.last_bw = None;
        self.episode_bws.clear();
        self.episode_qoe.clear();
        self.record_observation();
        self.flat_observation()
    }

    fn step(&mut self, action: &Action, _rng: &mut StdRng) -> Step {
        self.advance(bandwidth_from_action(action.vector()[0]))
    }
}

impl<P: AbrPolicy> AbrAdversaryEnv<P> {
    /// One chunk download at the given (already clipped) bandwidth. Split
    /// out of [`Env::step`] so [`Snapshot::restore`] can replay recorded
    /// bandwidths bit-exactly, without a lossy action-space roundtrip.
    fn advance(&mut self, bw: f64) -> Step {
        self.net.push(bw);
        self.episode_bws.push(bw);

        let (outcome, snapshot) = {
            let player = self.player.as_mut().expect("reset() before step()");
            let snapshot = (player.buffer_s(), player.last_quality(), player.next_chunk());
            let obs = player.observation(&self.net);
            let q = self.target.select(&obs);
            (player.step(q, &mut self.net), snapshot)
        };
        self.episode_qoe.push(outcome.qoe);

        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back(WindowEntry {
            buffer_before_s: snapshot.0,
            last_quality_before: snapshot.1,
            chunk_index: snapshot.2,
            bw_mbps: bw,
            protocol_qoe: outcome.qoe,
        });

        let smooth = self.cfg.smoothing_coef * self.last_bw.map(|p| (bw - p).abs()).unwrap_or(0.0);
        self.last_bw = Some(bw);
        let reward = self.window_reward(smooth);

        self.record_observation();
        let done = self.player.as_ref().expect("player").finished();
        Step { obs: self.flat_observation(), reward, done }
    }
}

/// Serialized mid-episode position: everything else (player, window,
/// history, target state) is a deterministic function of the replayed
/// bandwidths, since `reset` and `step` draw no randomness.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct AbrAdvSnap {
    started: bool,
    bws: Vec<f64>,
}

impl<P: AbrPolicy> Snapshot for AbrAdversaryEnv<P> {
    fn snapshot(&self) -> Value {
        AbrAdvSnap { started: self.player.is_some(), bws: self.episode_bws.clone() }.to_value()
    }

    fn restore(&mut self, v: &Value) -> Result<(), serde::Error> {
        let snap = AbrAdvSnap::from_value(v)?;
        // reset/step ignore the RNG, so a dummy stream is sufficient
        let mut rng = StdRng::seed_from_u64(0);
        if !snap.started {
            self.player = None;
            return Ok(());
        }
        self.reset(&mut rng);
        for &bw in &snap.bws {
            self.advance(bw);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr::BufferBased;
    use rand::SeedableRng;

    fn env() -> AbrAdversaryEnv<BufferBased> {
        AbrAdversaryEnv::new(
            BufferBased::pensieve_defaults(),
            Video::cbr(),
            AbrAdversaryConfig::default(),
        )
    }

    #[test]
    fn episode_is_one_video() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(0);
        let obs = e.reset(&mut rng);
        assert_eq!(obs.len(), OBS_DIM);
        let mut steps = 0;
        loop {
            let s = e.step(&action_for_bandwidth(2.0), &mut rng);
            steps += 1;
            if s.done {
                break;
            }
            assert!(steps <= 48);
        }
        assert_eq!(steps, 48);
        assert_eq!(e.episode_trace().len(), 48);
        assert_eq!(e.episode_qoe().len(), 48);
    }

    #[test]
    fn actions_are_clipped_to_paper_range() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(0);
        e.reset(&mut rng);
        e.step(&Action::Continuous(vec![99.0]), &mut rng);
        e.step(&Action::Continuous(vec![-5.0]), &mut rng);
        assert_eq!(e.episode_trace(), &[BW_MAX_MBPS, BW_MIN_MBPS]);
    }

    #[test]
    fn smoothing_penalizes_oscillation() {
        let mut rng = StdRng::seed_from_u64(0);
        // constant bandwidth: no smoothing penalty after the first step
        let mut e1 = env();
        e1.reset(&mut rng);
        let mut smooth_total = 0.0;
        for _ in 0..10 {
            smooth_total += e1.step(&action_for_bandwidth(2.0), &mut rng).reward;
        }
        // oscillating bandwidth: pays |Δbw| = 3.0 every step
        let mut e2 = env();
        e2.reset(&mut rng);
        let mut osc_total = 0.0;
        for i in 0..10 {
            let bw = if i % 2 == 0 { 1.0 } else { 4.0 };
            osc_total += e2.step(&action_for_bandwidth(bw), &mut rng).reward;
        }
        // oscillation may also hurt BB (raising r_opt − r_proto), but the
        // explicit penalty must make the *reward minus gap* clearly worse;
        // verify at least that the penalty term is present by magnitude
        assert!(
            osc_total < smooth_total + 15.0,
            "oscillation reward should carry the smoothing cost: {osc_total} vs {smooth_total}"
        );
    }

    #[test]
    fn reward_is_nonneg_gap_minus_smoothing() {
        // A protocol that plays optimally given the window cannot yield a
        // large positive reward; the gap term is bounded below by 0.
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(1);
        e.reset(&mut rng);
        let s = e.step(&action_for_bandwidth(4.8), &mut rng);
        // single chunk, constant bw, BB picks lowest quality first: gap can
        // be positive but finite; smoothing is zero on the first step
        assert!(s.reward > -0.5 && s.reward < 10.0, "reward {}", s.reward);
    }

    #[test]
    fn chunk_network_replays_schedule() {
        let mut net = ChunkNetwork::new(vec![1.0, 2.0, 4.0], 0.0);
        // 1 MB at 1 Mbit/s = 8 s; at 2 = 4 s; at 4 = 2 s; then sticks at 4
        assert!((net.download(1e6) - 8.0).abs() < 1e-9);
        assert!((net.download(1e6) - 4.0).abs() < 1e-9);
        assert!((net.download(1e6) - 2.0).abs() < 1e-9);
        assert!((net.download(1e6) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_restore_resumes_mid_episode_exactly() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(4);
        e.reset(&mut rng);
        for bw in [1.0, 4.5, 2.2, 0.9, 3.3] {
            e.step(&action_for_bandwidth(bw), &mut rng);
        }

        let snap = e.snapshot();
        let mut twin = env();
        twin.restore(&snap).unwrap();
        assert_eq!(twin.episode_trace(), e.episode_trace());
        assert_eq!(twin.episode_qoe(), e.episode_qoe());

        loop {
            let a = e.step(&action_for_bandwidth(2.0), &mut rng);
            let b = twin.step(&action_for_bandwidth(2.0), &mut rng);
            assert_eq!(a.obs, b.obs);
            assert_eq!(a.reward.to_bits(), b.reward.to_bits());
            assert_eq!(a.done, b.done);
            if a.done {
                break;
            }
        }
    }

    #[test]
    fn snapshot_of_unstarted_env_restores_to_unstarted() {
        let e = env();
        let snap = e.snapshot();
        let mut other = env();
        let mut rng = StdRng::seed_from_u64(0);
        other.reset(&mut rng);
        other.restore(&snap).unwrap();
        assert!(other.player.is_none());
    }

    #[test]
    fn observation_history_padded_then_rolls() {
        let mut e = env();
        let mut rng = StdRng::seed_from_u64(0);
        let obs0 = e.reset(&mut rng);
        // only one entry recorded: everything before it must be zero
        assert!(obs0[..OBS_FIELDS * (OBS_HISTORY - 1)].iter().all(|&x| x == 0.0));
        for _ in 0..12 {
            e.step(&action_for_bandwidth(2.0), &mut rng);
        }
        let obs = e.flat_observation();
        // the remaining-chunks feature of the oldest entry is now non-zero
        assert!(obs[8] > 0.0, "history should be full after 12 steps");
    }
}
