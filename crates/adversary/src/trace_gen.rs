//! Rolling a trained adversary into reproducible traces, replaying them
//! against (other) protocols, and the random-trace baselines.
//!
//! This is the heart of the paper's reproducibility claim: "traces from
//! these adversaries are sufficient to reproduce flawed performance in a
//! variety of target protocols without having to re-run the adversary."

use crate::abr_env::{AbrAdversaryConfig, AbrAdversaryEnv, ChunkNetwork};
use crate::cc_env::{CcAdversaryEnv, CcTrace};
use abr::{mean_qoe, run_session, AbrPolicy, Video};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::{rollout_episode, PolicyKind, Ppo, RunningMeanStd};

/// An adversarial ABR trace: the bandwidth (Mbit/s) offered to each chunk.
pub type AbrTrace = Vec<f64>;

/// Roll the trained `adversary` against the environment's target `n` times
/// and collect the bandwidth traces.
///
/// `deterministic` selects the policy mode (no exploration noise); traces
/// from a stochastic rollout differ per episode, which is how the paper
/// produces 200 distinct traces from one adversary.
pub fn generate_abr_traces<P: AbrPolicy + Clone + Send>(
    env: &mut AbrAdversaryEnv<P>,
    adversary: &Ppo,
    n: usize,
    deterministic: bool,
    seed: u64,
) -> Vec<AbrTrace> {
    generate_abr_traces_with(
        env,
        &adversary.policy,
        adversary.obs_norm.as_ref(),
        n,
        deterministic,
        seed,
    )
}

/// As [`generate_abr_traces`] but from a bare (saved) policy and its frozen
/// observation statistics — no trainer required.
///
/// Panics on exhausted worker retries; see
/// [`try_generate_abr_traces_with`] for the fallible form.
pub fn generate_abr_traces_with<P: AbrPolicy + Clone + Send>(
    env: &mut AbrAdversaryEnv<P>,
    policy: &PolicyKind,
    obs_norm: Option<&RunningMeanStd>,
    n: usize,
    deterministic: bool,
    seed: u64,
) -> Vec<AbrTrace> {
    try_generate_abr_traces_with(env, policy, obs_norm, n, deterministic, seed)
        .unwrap_or_else(|e| panic!("adversarial trace generation failed: {e}"))
}

/// Fault-isolated parallel trace generation.
///
/// Episodes are rolled via [`exec::try_par_map`]: episode `i` runs on its
/// own clone of `env` with an RNG stream derived as
/// `exec::split_seed(seed, i)`, so the returned traces are deterministic
/// in `seed` and independent of both worker count and thread scheduling.
/// A panicking episode is retried once on a fresh clone; an episode that
/// keeps failing surfaces as a structured [`exec::ExecError`] instead of
/// tearing the whole batch down.
pub fn try_generate_abr_traces_with<P: AbrPolicy + Clone + Send>(
    env: &mut AbrAdversaryEnv<P>,
    policy: &PolicyKind,
    obs_norm: Option<&RunningMeanStd>,
    n: usize,
    deterministic: bool,
    seed: u64,
) -> Result<Vec<AbrTrace>, exec::ExecError> {
    let episodes: Vec<AbrAdversaryEnv<P>> = (0..n).map(|_| env.clone()).collect();
    exec::try_par_map(
        episodes,
        exec::default_workers(),
        &fault::Backoff::none(1),
        |i, mut ep_env| {
            let mut rng = StdRng::seed_from_u64(exec::split_seed(seed, i as u64));
            // rollout_episode drives the env via the policy with the trainer's
            // frozen observation statistics
            let _stats =
                rollout_episode(&mut ep_env, policy, obs_norm, deterministic, 10_000, &mut rng);
            ep_env.episode_trace().to_vec()
        },
    )
}

/// Replay a chunk-indexed bandwidth trace against `protocol`, returning the
/// per-chunk mean QoE.
pub fn replay_abr_trace(
    trace: &AbrTrace,
    protocol: &mut dyn AbrPolicy,
    video: &Video,
    cfg: &AbrAdversaryConfig,
) -> f64 {
    let _span = telemetry::span!("sim.replay");
    let mut net = ChunkNetwork::new(trace.clone(), cfg.latency_ms);
    let outcomes = run_session(video, protocol, &mut net, &cfg.qoe);
    mean_qoe(&outcomes)
}

/// Replay returning the full per-chunk outcomes (for Fig.-3-style plots).
pub fn replay_abr_trace_detailed(
    trace: &AbrTrace,
    protocol: &mut dyn AbrPolicy,
    video: &Video,
    cfg: &AbrAdversaryConfig,
) -> Vec<abr::ChunkOutcome> {
    let _span = telemetry::span!("sim.replay");
    let mut net = ChunkNetwork::new(trace.clone(), cfg.latency_ms);
    run_session(video, protocol, &mut net, &cfg.qoe)
}

/// The paper's baseline: traces drawn uniformly from the same action space
/// as the adversary (bandwidth per chunk in 0.8–4.8 Mbit/s).
pub fn random_abr_traces(n: usize, n_chunks: usize, seed: u64) -> Vec<AbrTrace> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a4d_0000);
    (0..n)
        .map(|_| {
            (0..n_chunks)
                .map(|_| rng.gen_range(crate::abr_env::BW_MIN_MBPS..crate::abr_env::BW_MAX_MBPS))
                .collect()
        })
        .collect()
}

/// Roll the trained CC adversary for one episode and return the recorded
/// trace (link parameters + achieved throughput/utilization per 30 ms).
pub fn generate_cc_trace(
    env: &mut CcAdversaryEnv,
    adversary: &Ppo,
    deterministic: bool,
    seed: u64,
) -> CcTrace {
    generate_cc_trace_with(env, &adversary.policy, adversary.obs_norm.as_ref(), deterministic, seed)
}

/// As [`generate_cc_trace`] but from a bare (saved) policy.
pub fn generate_cc_trace_with(
    env: &mut CcAdversaryEnv,
    policy: &PolicyKind,
    obs_norm: Option<&RunningMeanStd>,
    deterministic: bool,
    seed: u64,
) -> CcTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = rollout_episode(env, policy, obs_norm, deterministic, 1_000_000, &mut rng);
    env.episode_trace().clone()
}

/// Replay a per-interval link-parameter schedule against a fresh
/// congestion-control instance, returning the recorded [`CcTrace`] (the
/// same accounting the adversary environment produces). This is the CC
/// analogue of [`replay_abr_trace`]: the artifact alone reproduces the
/// result.
pub fn replay_cc_schedule(
    params: &[netsim::LinkParams],
    make_cc: impl Fn() -> Box<dyn netsim::CongestionControl>,
    sim_cfg: netsim::SimConfig,
) -> CcTrace {
    assert!(!params.is_empty(), "schedule must not be empty");
    let _span = telemetry::span!("sim.replay");
    let mut sim = netsim::FlowSim::new(make_cc(), params[0], sim_cfg);
    let mut out = CcTrace::default();
    for p in params {
        sim.set_link(*p);
        let st = sim.run_for(crate::cc_env::INTERVAL);
        out.params.push(*p);
        out.throughput_mbps.push(st.throughput_mbps);
        out.utilization.push(st.utilization);
    }
    out
}

/// Convert chunk-indexed ABR traces into the common [`traces::Trace`]
/// format (one nominal chunk-duration segment per bandwidth), e.g. to mix
/// them into a Pensieve training corpus.
///
/// Panics on a non-physical trace (empty, non-finite or non-positive
/// bandwidth); see [`try_abr_traces_to_corpus`] for the Result-returning
/// form used when the traces come from an untrusted source — or from a
/// policy that may have diverged.
pub fn abr_traces_to_corpus(
    traces_in: &[AbrTrace],
    video: &Video,
    latency_ms: f64,
    name_prefix: &str,
) -> Vec<traces::Trace> {
    try_abr_traces_to_corpus(traces_in, video, latency_ms, name_prefix)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`abr_traces_to_corpus`]: each converted trace is validated
/// through [`traces::Trace::try_validate`] and the first offending trace
/// surfaces as a descriptive error (naming the trace and segment) instead
/// of a panic. A diverged adversary emitting NaN bandwidths therefore
/// fails cleanly at the conversion boundary rather than deep inside a
/// replay.
pub fn try_abr_traces_to_corpus(
    traces_in: &[AbrTrace],
    video: &Video,
    latency_ms: f64,
    name_prefix: &str,
) -> Result<Vec<traces::Trace>, String> {
    traces_in
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let trace = traces::Trace {
                name: format!("{name_prefix}-{i}"),
                segments: t
                    .iter()
                    .map(|&bw| traces::Segment::bw(video.chunk_seconds(), bw, latency_ms))
                    .collect(),
            };
            trace.try_validate()?;
            Ok(trace)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr::{BufferBased, Mpc, RateBased};

    #[test]
    fn random_traces_are_in_range_and_distinct() {
        let ts = random_abr_traces(5, 48, 1);
        assert_eq!(ts.len(), 5);
        for t in &ts {
            assert_eq!(t.len(), 48);
            assert!(t.iter().all(|&b| (0.8..=4.8).contains(&b)));
        }
        assert_ne!(ts[0], ts[1]);
        // determinism
        assert_eq!(random_abr_traces(5, 48, 1), ts);
    }

    #[test]
    fn replay_is_deterministic_per_protocol() {
        let video = Video::cbr();
        let cfg = AbrAdversaryConfig::default();
        let trace: AbrTrace = (0..48).map(|i| 1.0 + (i % 4) as f64).collect();
        let a = replay_abr_trace(&trace, &mut BufferBased::pensieve_defaults(), &video, &cfg);
        let b = replay_abr_trace(&trace, &mut BufferBased::pensieve_defaults(), &video, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_protocols_score_differently() {
        let video = Video::cbr();
        let cfg = AbrAdversaryConfig::default();
        let trace: AbrTrace = (0..48).map(|i| if i % 6 < 3 { 1.0 } else { 4.0 }).collect();
        let bb = replay_abr_trace(&trace, &mut BufferBased::pensieve_defaults(), &video, &cfg);
        let mpc = replay_abr_trace(&trace, &mut Mpc::default(), &video, &cfg);
        let rate = replay_abr_trace(&trace, &mut RateBased::default(), &video, &cfg);
        // no exact expectations — just that the harness distinguishes them
        let distinct = [bb, mpc, rate];
        assert!(
            distinct.iter().any(|&x| (x - bb).abs() > 1e-9) || (mpc - bb).abs() > 1e-9,
            "protocols should not all tie: {distinct:?}"
        );
    }

    #[test]
    fn corpus_conversion_shapes() {
        let video = Video::cbr();
        let ts = random_abr_traces(3, 48, 9);
        let corpus = abr_traces_to_corpus(&ts, &video, 80.0, "adv");
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus[0].segments.len(), 48);
        assert!((corpus[0].duration_s() - 192.0).abs() < 1e-9);
        assert_eq!(corpus[1].name, "adv-1");
    }

    #[test]
    fn try_corpus_conversion_rejects_poisoned_traces_with_context() {
        let video = Video::cbr();
        let mut ts = random_abr_traces(2, 8, 9);
        ts[1][3] = f64::NAN;
        let err = try_abr_traces_to_corpus(&ts, &video, 80.0, "adv").unwrap_err();
        assert!(err.contains("adv-1"), "{err}");
        assert!(err.contains("segment 3"), "{err}");
        // the good prefix alone converts fine
        assert_eq!(try_abr_traces_to_corpus(&ts[..1], &video, 80.0, "adv").unwrap().len(), 1);
    }
}
