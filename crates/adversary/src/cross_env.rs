//! Adversarial *cross traffic* against a victim flow (multi-flow mode).
//!
//! [`cc_env`](crate::cc_env) gives the adversary the link itself — it warps
//! bandwidth, latency and loss under a single sender. This environment is
//! the competing-sender variant the multi-flow simulator enables: the link
//! is honest and fixed, and the adversary instead drives a *cross-traffic
//! sender* sharing the bottleneck with the victim. Every 30 ms it picks the
//! cross flow's pacing rate; its reward is the damage done to the victim —
//! throughput stolen beyond the fair share, plus queueing delay inflicted —
//! minus a cost on the rate it spends:
//!
//! ```text
//! r = (1 − 2·U_victim) + delay_coef · (queue_delay_ms / 100) − rate_cost · rate_norm
//! ```
//!
//! With two flows the victim's fair share is half the link, so `1 −
//! 2·U_victim` is zero when the victim holds its share and positive only
//! when the adversary suppresses it below that. The rate cost makes naive
//! flooding unprofitable: blasting at line rate pays `rate_cost` forever,
//! so the interesting policies are *pulsed* — the on/off bursts that
//! exploit a protocol's congestion response rather than raw displacement.
//! The AQM at the bottleneck is pluggable ([`QdiscKind`]), so the same
//! adversary can be trained against drop-tail, RED and DCTCP-style ECN
//! regimes.

use crate::cc_env::INTERVAL;
use netsim::{
    BitsPerSec, CongestionControl, LinkParams, MultiFlowSim, QdiscKind, RateHandle, SharedRateCc,
    SimConfig,
};
use nn::ops::{scale_from_unit, scale_to_unit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{Action, ActionSpace, Env, Snapshot, Step};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// Flow key of the victim (the protocol under attack).
pub const VICTIM_FLOW: u64 = 0;
/// Flow key of the adversary-driven cross-traffic sender.
pub const CROSS_FLOW: u64 = 1;

/// Configuration of the cross-traffic adversary environment.
#[derive(Debug, Clone)]
pub struct CrossTrafficConfig {
    /// Range of cross-traffic pacing rates the adversary may choose (Mbit/s).
    pub rate_mbps: (f64, f64),
    /// The fixed, honest bottleneck link both flows share.
    pub link: LinkParams,
    /// Queueing discipline at the bottleneck.
    pub qdisc: QdiscKind,
    /// Adversary decisions per episode.
    pub episode_steps: usize,
    /// How many consecutive 30 ms intervals each decision is held for.
    pub action_repeat: usize,
    /// Reward per unit of normalized queueing delay inflicted (delay in ms
    /// is divided by 100 before weighting, matching the observation scale).
    pub delay_coef: f64,
    /// Cost per unit of normalized cross-traffic rate spent.
    pub rate_cost: f64,
    /// Simulator configuration (seed is overridden per episode).
    pub sim: SimConfig,
}

impl Default for CrossTrafficConfig {
    fn default() -> Self {
        CrossTrafficConfig {
            rate_mbps: (0.0, 24.0),
            link: LinkParams::new(12.0, 20.0, 0.0),
            qdisc: QdiscKind::DropTail,
            episode_steps: 300,
            action_repeat: 1,
            delay_coef: 0.1,
            rate_cost: 0.05,
            sim: SimConfig::default(),
        }
    }
}

/// A recorded cross-traffic attack: the per-step rate schedule and what it
/// did to the victim.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrossTrace {
    pub rate_mbps: Vec<f64>,
    pub victim_utilization: Vec<f64>,
    pub cross_utilization: Vec<f64>,
    pub queue_delay_ms: Vec<f64>,
}

impl CrossTrace {
    pub fn len(&self) -> usize {
        self.rate_mbps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rate_mbps.is_empty()
    }

    /// Mean victim utilization over the trace (fair share is 0.5).
    pub fn mean_victim_utilization(&self) -> f64 {
        nn::ops::mean(&self.victim_utilization)
    }
}

/// The online cross-traffic adversary environment.
///
/// A fresh victim protocol, cross sender and simulator are built per
/// episode from the supplied factory (shared behind an [`Arc`] so the
/// environment clones into rollout workers, mirroring
/// [`CcAdversaryEnv`](crate::cc_env::CcAdversaryEnv)).
pub struct CrossTrafficEnv {
    make_cc: Arc<dyn Fn() -> Box<dyn CongestionControl> + Send + Sync>,
    cfg: CrossTrafficConfig,
    sim: Option<MultiFlowSim>,
    handle: Option<RateHandle>,
    step_count: usize,
    episode: u64,
    last_obs: [f64; 3],
    trace: CrossTrace,
    /// Raw policy actions this episode (one scalar per step): the replay
    /// log for [`Snapshot`] — the simulator is a deterministic function of
    /// (sim seed, episode, actions).
    ep_actions: Vec<f64>,
}

impl CrossTrafficEnv {
    pub fn new(
        make_cc: Box<dyn Fn() -> Box<dyn CongestionControl> + Send + Sync>,
        cfg: CrossTrafficConfig,
    ) -> Self {
        CrossTrafficEnv {
            make_cc: Arc::from(make_cc),
            cfg,
            sim: None,
            handle: None,
            step_count: 0,
            episode: 0,
            last_obs: [0.0; 3],
            trace: CrossTrace::default(),
            ep_actions: Vec::new(),
        }
    }

    /// The recorded attack of the current/last episode.
    pub fn episode_trace(&self) -> &CrossTrace {
        &self.trace
    }

    /// Replace the simulator seed base (rollout workers decorrelate their
    /// clones with this before the first episode).
    pub fn set_sim_seed(&mut self, seed: u64) {
        self.cfg.sim.seed = seed;
    }

    /// The normalized `[-1, 1]` action that selects `rate_mbps` (for tests
    /// and hand-built schedules).
    pub fn action_for(&self, rate_mbps: f64) -> Action {
        Action::Continuous(vec![scale_to_unit(
            rate_mbps,
            self.cfg.rate_mbps.0,
            self.cfg.rate_mbps.1,
        )])
    }
}

/// Clones are independent environments sharing the victim factory, starting
/// before their first episode — the state a rollout worker wants.
impl Clone for CrossTrafficEnv {
    fn clone(&self) -> Self {
        CrossTrafficEnv {
            make_cc: Arc::clone(&self.make_cc),
            cfg: self.cfg.clone(),
            sim: None,
            handle: None,
            step_count: 0,
            episode: 0,
            last_obs: [0.0; 3],
            trace: CrossTrace::default(),
            ep_actions: Vec::new(),
        }
    }
}

impl Env for CrossTrafficEnv {
    fn obs_dim(&self) -> usize {
        3 // victim utilization, queueing delay, cross-flow utilization
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous { low: vec![-1.0], high: vec![1.0] }
    }

    fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
        self.episode += 1;
        let sim_cfg = SimConfig { seed: self.cfg.sim.seed ^ self.episode, ..self.cfg.sim.clone() };
        let mut sim = MultiFlowSim::with_qdisc(self.cfg.link, sim_cfg, self.cfg.qdisc.build());
        sim.add_flow(VICTIM_FLOW, (self.make_cc)());
        let mid = (self.cfg.rate_mbps.0 + self.cfg.rate_mbps.1) / 2.0;
        // effectively window-unlimited: the cross sender is pure paced load
        let (cross, handle) = SharedRateCc::new(BitsPerSec::from_mbps(mid), 1e9);
        sim.add_flow(CROSS_FLOW, Box::new(cross));
        self.sim = Some(sim);
        self.handle = Some(handle);
        self.step_count = 0;
        self.last_obs = [0.0; 3];
        self.trace = CrossTrace::default();
        self.ep_actions.clear();
        vec![0.0, 0.0, 0.0]
    }

    fn step(&mut self, action: &Action, _rng: &mut StdRng) -> Step {
        self.ep_actions.extend_from_slice(action.vector());
        let (lo, hi) = self.cfg.rate_mbps;
        let rate_mbps = scale_from_unit(action.vector()[0], lo, hi);
        let rate_norm = (rate_mbps - lo) / (hi - lo).max(1e-9);
        self.handle
            .as_ref()
            .expect("reset() before step()")
            .set_rate(BitsPerSec::from_mbps(rate_mbps));
        let sim = self.sim.as_mut().expect("reset() before step()");

        let repeat = self.cfg.action_repeat.max(1);
        let (mut victim_sum, mut cross_sum, mut qd_sum) = (0.0, 0.0, 0.0);
        for _ in 0..repeat {
            let stats = sim.run_for(INTERVAL);
            let mut victim_util = 0.0;
            let mut cross_util = 0.0;
            for (key, s) in &stats {
                match *key {
                    VICTIM_FLOW => victim_util = s.utilization,
                    CROSS_FLOW => cross_util = s.utilization,
                    other => unreachable!("unexpected flow key {other}"),
                }
            }
            let qd = sim.queue_delay_ms();
            victim_sum += victim_util;
            cross_sum += cross_util;
            qd_sum += qd;
            self.trace.rate_mbps.push(rate_mbps);
            self.trace.victim_utilization.push(victim_util);
            self.trace.cross_utilization.push(cross_util);
            self.trace.queue_delay_ms.push(qd);
        }
        let victim_util = victim_sum / repeat as f64;
        let cross_util = cross_sum / repeat as f64;
        let qd = qd_sum / repeat as f64;

        let reward = (1.0 - 2.0 * victim_util) + self.cfg.delay_coef * (qd / 100.0)
            - self.cfg.rate_cost * rate_norm;

        self.last_obs = [victim_util, qd / 100.0, cross_util];
        self.step_count += 1;
        Step {
            obs: self.last_obs.to_vec(),
            reward,
            done: self.step_count >= self.cfg.episode_steps,
        }
    }

    /// Give each rollout-worker clone its own per-episode simulator seed
    /// sequence (same convention as the single-flow CC adversary).
    fn decorrelate(&mut self, stream_seed: u64) {
        let mixed = self.cfg.sim.seed ^ stream_seed;
        self.set_sim_seed(mixed);
    }
}

/// Serialized mid-episode position; the simulator is rebuilt by replaying
/// the recorded actions against the per-episode seed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct CrossSnap {
    started: bool,
    sim_seed: u64,
    episode: u64,
    actions: Vec<f64>,
}

impl Snapshot for CrossTrafficEnv {
    fn snapshot(&self) -> Value {
        CrossSnap {
            started: self.sim.is_some(),
            sim_seed: self.cfg.sim.seed,
            episode: self.episode,
            actions: self.ep_actions.clone(),
        }
        .to_value()
    }

    fn restore(&mut self, v: &Value) -> Result<(), serde::Error> {
        let snap = CrossSnap::from_value(v)?;
        self.cfg.sim.seed = snap.sim_seed;
        self.episode = snap.episode;
        if !snap.started {
            self.sim = None;
            self.handle = None;
            self.step_count = 0;
            return Ok(());
        }
        if snap.episode == 0 {
            return Err(serde::Error::custom(
                "cross-traffic snapshot claims a started episode but its counter is 0",
            ));
        }
        // reset() advances the episode counter before seeding, so rewind by
        // one and let it rebuild the simulator with the recorded seed.
        self.episode = snap.episode - 1;
        let mut rng = StdRng::seed_from_u64(0); // reset/step ignore the RNG
        self.reset(&mut rng);
        for raw in snap.actions.clone() {
            self.step(&Action::Continuous(vec![raw]), &mut rng);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc::Cubic;
    use rand::SeedableRng;

    fn env(steps: usize) -> CrossTrafficEnv {
        CrossTrafficEnv::new(
            Box::new(|| Box::new(Cubic::new())),
            CrossTrafficConfig { episode_steps: steps, ..CrossTrafficConfig::default() },
        )
    }

    #[test]
    fn episode_length_and_trace_recorded() {
        let mut e = env(40);
        let mut rng = StdRng::seed_from_u64(0);
        e.reset(&mut rng);
        let mut n = 0;
        loop {
            let s = e.step(&e.action_for(6.0), &mut rng);
            n += 1;
            if s.done {
                break;
            }
            assert!(n <= 40);
        }
        assert_eq!(n, 40);
        assert_eq!(e.episode_trace().len(), 40);
        assert!(e.episode_trace().rate_mbps.iter().all(|r| (r - 6.0).abs() < 1e-9));
    }

    #[test]
    fn flooding_suppresses_the_victim() {
        // Cross traffic at full range rate vs. none: the victim must lose
        // a meaningful share of the link when flooded.
        let run = |rate: f64| {
            let mut e = env(200);
            let mut rng = StdRng::seed_from_u64(0);
            e.reset(&mut rng);
            for _ in 0..200 {
                e.step(&e.action_for(rate), &mut rng);
            }
            let t = e.episode_trace();
            nn::ops::mean(&t.victim_utilization[100..])
        };
        let idle = run(0.0);
        let flood = run(24.0);
        assert!(idle > 0.7, "unopposed victim should fill the link: {idle}");
        assert!(flood < idle - 0.3, "flooding must displace the victim: {idle} -> {flood}");
    }

    #[test]
    fn rate_cost_charges_the_adversary() {
        let mut e = env(10);
        let mut rng = StdRng::seed_from_u64(0);
        e.reset(&mut rng);
        // first step: victim barely started, so the utilization term is
        // near its maximum for both; the rate cost must separate them
        let r_hi = e.step(&e.action_for(24.0), &mut rng).reward;
        e.reset(&mut rng);
        let r_lo = e.step(&e.action_for(0.0), &mut rng).reward;
        assert!(r_lo > r_hi - 1.0, "sanity: rewards comparable early on: {r_lo} vs {r_hi}");
    }

    #[test]
    fn snapshot_restore_resumes_mid_episode_exactly() {
        let mut e = env(30);
        let mut rng = StdRng::seed_from_u64(3);
        e.reset(&mut rng);
        for _ in 0..30 {
            e.step(&e.action_for(18.0), &mut rng);
        }
        e.reset(&mut rng);
        for i in 0..7 {
            e.step(&e.action_for(3.0 * i as f64), &mut rng);
        }

        let snap = e.snapshot();
        let mut twin = env(30);
        twin.restore(&snap).unwrap();

        for i in 0..10 {
            let act = e.action_for(24.0 - 2.0 * i as f64);
            let a = e.step(&act, &mut rng);
            let b = twin.step(&act, &mut rng);
            assert_eq!(a.obs, b.obs, "step {i}");
            assert_eq!(a.reward.to_bits(), b.reward.to_bits(), "step {i}");
            assert_eq!(a.done, b.done, "step {i}");
        }
    }

    #[test]
    fn episodes_are_reproducible_by_seed_and_decorrelate_diverges() {
        let run = |stream: Option<u64>| {
            let mut e = env(60);
            if let Some(s) = stream {
                e.decorrelate(s);
            }
            let mut rng = StdRng::seed_from_u64(0);
            e.reset(&mut rng);
            let mut total = 0.0;
            for i in 0..60 {
                total += e.step(&e.action_for((i % 5) as f64 * 6.0), &mut rng).reward;
            }
            total
        };
        assert_eq!(run(None), run(None));
        assert_eq!(run(Some(7)), run(Some(7)));
    }

    #[test]
    fn runs_under_every_qdisc() {
        for kind in QdiscKind::ALL {
            let mut e = CrossTrafficEnv::new(
                Box::new(|| Box::new(Cubic::new())),
                CrossTrafficConfig {
                    episode_steps: 20,
                    qdisc: kind,
                    ..CrossTrafficConfig::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(1);
            e.reset(&mut rng);
            for _ in 0..20 {
                let s = e.step(&e.action_for(18.0), &mut rng);
                assert!(s.reward.is_finite(), "{kind:?}");
            }
        }
    }
}
