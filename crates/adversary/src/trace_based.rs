//! A *trace-based* adversary (paper §2.1's alternative design): instead of
//! reacting online, it searches directly over whole traces — "a time-ordered
//! list of network conditions ... as a single output" — scored by replaying
//! the target protocol on them.
//!
//! The paper rejects this design for RL because each trace is a single data
//! point, making training slow; here it is implemented with the
//! cross-entropy method (CEM), a derivative-free search that needs no value
//! estimation and makes the trade-off measurable (see the
//! `ablation_tracebased` bench): trace-based search needs a full protocol
//! rollout per candidate but its artifacts replay exactly by construction,
//! whereas the online adversary's traces depend on the interaction history.

use crate::abr_env::{AbrAdversaryConfig, ChunkNetwork, BW_MAX_MBPS, BW_MIN_MBPS};
use crate::trace_gen::AbrTrace;
use abr::{run_session, AbrPolicy, Video};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cross-entropy method configuration.
#[derive(Debug, Clone)]
pub struct CemConfig {
    /// Candidates per generation.
    pub population: usize,
    /// Elite fraction refitting the sampling distribution.
    pub elite_frac: f64,
    /// Generations to run.
    pub generations: usize,
    /// Initial per-chunk standard deviation (Mbit/s).
    pub init_std: f64,
    /// Additive noise floor on the std (prevents premature collapse).
    pub std_floor: f64,
    /// Weight of the smoothness penalty (Eq. 1's `p_smoothing`), applied to
    /// the mean absolute bandwidth step of the candidate trace.
    pub smoothing_coef: f64,
    pub seed: u64,
}

impl Default for CemConfig {
    fn default() -> Self {
        CemConfig {
            population: 64,
            elite_frac: 0.125,
            generations: 30,
            init_std: 1.2,
            std_floor: 0.05,
            smoothing_coef: 1.0,
            seed: 0,
        }
    }
}

/// Result of a CEM search.
#[derive(Debug, Clone)]
pub struct CemOutcome {
    /// The best trace found.
    pub trace: AbrTrace,
    /// Its Eq.-1 style score: `(r_opt − r_protocol)/chunks − smoothing`.
    pub score: f64,
    /// Best score per generation (for convergence plots).
    pub history: Vec<f64>,
}

/// Score a whole trace against the target: the per-chunk mean gap between
/// the full-trace offline optimum and the protocol's QoE, minus the
/// smoothness penalty on the trace itself.
pub fn score_trace(
    trace: &AbrTrace,
    target: &mut dyn AbrPolicy,
    video: &Video,
    cfg: &AbrAdversaryConfig,
    smoothing_coef: f64,
) -> f64 {
    let mut net = ChunkNetwork::new(trace.clone(), cfg.latency_ms);
    let outcomes = run_session(video, target, &mut net, &cfg.qoe);
    let proto: f64 = outcomes.iter().map(|o| o.qoe).sum();
    let (opt, _) = abr::optimal_qoe_dp(video, &cfg.qoe, trace, cfg.latency_ms / 1000.0);
    let n = video.n_chunks() as f64;
    let jump = trace.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>()
        / (trace.len().max(2) - 1) as f64;
    (opt - proto) / n - smoothing_coef * jump
}

/// Search for an adversarial trace against `target` with CEM.
pub fn cem_search(
    target: &mut dyn AbrPolicy,
    video: &Video,
    adv_cfg: &AbrAdversaryConfig,
    cem: &CemConfig,
) -> CemOutcome {
    assert!(cem.population >= 4, "population too small");
    let n_elite = ((cem.population as f64 * cem.elite_frac) as usize).max(2);
    let n = video.n_chunks();
    let mut rng = StdRng::seed_from_u64(cem.seed ^ 0xce31);
    let mut mean = vec![(BW_MIN_MBPS + BW_MAX_MBPS) / 2.0; n];
    let mut std = vec![cem.init_std; n];
    let mut best: Option<(f64, AbrTrace)> = None;
    let mut history = Vec::with_capacity(cem.generations);

    for _gen in 0..cem.generations {
        let mut scored: Vec<(f64, AbrTrace)> = (0..cem.population)
            .map(|_| {
                let candidate: AbrTrace = (0..n)
                    .map(|i| {
                        (mean[i] + std[i] * nn::init::gaussian(&mut rng))
                            .clamp(BW_MIN_MBPS, BW_MAX_MBPS)
                    })
                    .collect();
                let s = score_trace(&candidate, target, video, adv_cfg, cem.smoothing_coef);
                (s, candidate)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
        if best.as_ref().map(|(s, _)| scored[0].0 > *s).unwrap_or(true) {
            best = Some(scored[0].clone());
        }
        history.push(scored[0].0);
        // refit the sampling distribution on the elites
        for i in 0..n {
            let vals: Vec<f64> = scored[..n_elite].iter().map(|(_, t)| t[i]).collect();
            mean[i] = nn::ops::mean(&vals);
            std[i] = nn::ops::std_dev(&vals).max(cem.std_floor);
        }
    }
    let (score, trace) = best.expect("at least one generation ran");
    CemOutcome { trace, score, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr::BufferBased;

    fn quick_cem() -> CemConfig {
        CemConfig { population: 32, generations: 10, seed: 3, ..CemConfig::default() }
    }

    #[test]
    fn cem_finds_worse_traces_than_random() {
        let video = Video::cbr();
        let cfg = AbrAdversaryConfig::default();
        let mut bb = BufferBased::pensieve_defaults();
        let out = cem_search(&mut bb, &video, &cfg, &quick_cem());
        assert_eq!(out.trace.len(), 48);
        // compare against the best of an equal budget of random traces
        let budget = 32 * 10;
        let best_random = crate::random_abr_traces(budget, 48, 9)
            .iter()
            .map(|t| score_trace(t, &mut bb, &video, &cfg, 1.0))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            out.score > best_random,
            "CEM ({:.3}) should beat random search ({best_random:.3}) at equal budget",
            out.score
        );
    }

    #[test]
    fn cem_history_is_improving_overall() {
        let video = Video::cbr();
        let cfg = AbrAdversaryConfig::default();
        let mut bb = BufferBased::pensieve_defaults();
        let out = cem_search(&mut bb, &video, &cfg, &quick_cem());
        let early = out.history[0];
        let late = *out.history.last().unwrap();
        assert!(late >= early, "CEM should not regress: {early:.3} -> {late:.3}");
    }

    #[test]
    fn trace_replays_to_its_score() {
        // the defining property of trace-based adversaries: the artifact
        // alone reproduces the result
        let video = Video::cbr();
        let cfg = AbrAdversaryConfig::default();
        let mut bb = BufferBased::pensieve_defaults();
        let out = cem_search(&mut bb, &video, &cfg, &quick_cem());
        let replayed = score_trace(&out.trace, &mut bb, &video, &cfg, 1.0);
        assert!((replayed - out.score).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn rejects_tiny_population() {
        let video = Video::cbr();
        let cfg = AbrAdversaryConfig::default();
        let mut bb = BufferBased::pensieve_defaults();
        cem_search(&mut bb, &video, &cfg, &CemConfig { population: 2, ..CemConfig::default() });
    }
}
