//! The adversary environment for congestion control (paper §4).
//!
//! The adversary controls link bandwidth, latency and random loss at a
//! granularity of 30 ms, constrained to the paper's Table 1 ranges
//! (bandwidth 6–24 Mbit/s, latency 15–60 ms, loss 0–10 %) — all "clearly
//! within BBR's expected design range". It observes two inputs: the current
//! link utilization and the current queuing delay. Its reward is
//!
//! ```text
//! r = 1 − U − L − 0.01 · S
//! ```
//!
//! where `U` is link utilization, `L` the chosen loss rate, and `S` a
//! smoothing factor from the difference between the current bandwidth and
//! latency and exponentially-weighted moving averages of both.

use netsim::{CongestionControl, FlowSim, LinkParams, SimConfig, Time, MS};
use nn::ops::{scale_from_unit, scale_to_unit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{Action, ActionSpace, Env, Snapshot, Step};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// Adversary control granularity (paper: 30 ms).
pub const INTERVAL: Time = 30 * MS;

/// Table 1 of the paper: the ranges of link parameters the adversary may
/// produce.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CcActionSpace {
    pub bandwidth_mbps: (f64, f64),
    pub latency_ms: (f64, f64),
    pub loss_rate: (f64, f64),
}

impl Default for CcActionSpace {
    fn default() -> Self {
        CcActionSpace {
            bandwidth_mbps: (6.0, 24.0),
            latency_ms: (15.0, 60.0),
            loss_rate: (0.0, 0.10),
        }
    }
}

impl CcActionSpace {
    /// Clip a raw *physical* 3-vector into the box and build [`LinkParams`].
    pub fn to_params(&self, raw: &[f64]) -> LinkParams {
        assert_eq!(raw.len(), 3, "CC actions are (bandwidth, latency, loss)");
        LinkParams::new(
            raw[0].clamp(self.bandwidth_mbps.0, self.bandwidth_mbps.1),
            raw[1].clamp(self.latency_ms.0, self.latency_ms.1),
            raw[2].clamp(self.loss_rate.0, self.loss_rate.1),
        )
    }

    /// Map a normalized `[-1, 1]` policy action onto the box (clipping
    /// out-of-range values, the stable-baselines convention the paper
    /// describes for PPO).
    pub fn from_unit(&self, raw: &[f64]) -> LinkParams {
        assert_eq!(raw.len(), 3, "CC actions are (bandwidth, latency, loss)");
        LinkParams::new(
            scale_from_unit(raw[0], self.bandwidth_mbps.0, self.bandwidth_mbps.1),
            scale_from_unit(raw[1], self.latency_ms.0, self.latency_ms.1),
            scale_from_unit(raw[2], self.loss_rate.0, self.loss_rate.1),
        )
    }

    /// Inverse of [`CcActionSpace::from_unit`] (for tests and hand-built
    /// schedules).
    pub fn action_for(&self, bandwidth_mbps: f64, latency_ms: f64, loss_rate: f64) -> Action {
        Action::Continuous(vec![
            scale_to_unit(bandwidth_mbps, self.bandwidth_mbps.0, self.bandwidth_mbps.1),
            scale_to_unit(latency_ms, self.latency_ms.0, self.latency_ms.1),
            scale_to_unit(loss_rate, self.loss_rate.0, self.loss_rate.1),
        ])
    }
}

/// Configuration of the CC adversary environment.
#[derive(Debug, Clone)]
pub struct CcAdversaryConfig {
    /// Action constraints (Table 1 by default).
    pub space: CcActionSpace,
    /// Adversary decisions per episode (paper: 30 s = 1000 × 30 ms with
    /// `action_repeat = 1`).
    pub episode_steps: usize,
    /// How many consecutive 30 ms intervals each decision is held for.
    ///
    /// The paper's adversary acts every 30 ms; with `1` this environment
    /// matches it exactly. Poisoning BBR's windowed-max bandwidth filter,
    /// however, requires conditions sustained over ~10 packet rounds, which
    /// iid per-step exploration noise essentially never produces — so
    /// training configurations use a larger repeat (e.g. 10 ⇒ decisions
    /// every 300 ms) to make that valley crossable, and the recorded trace
    /// still contains one entry per 30 ms interval.
    pub action_repeat: usize,
    /// EWMA factor for the smoothing baseline.
    pub ewma_alpha: f64,
    /// Coefficient on the smoothing factor (paper: 0.01).
    pub smoothing_coef: f64,
    /// Link simulator configuration (seed is overridden per episode).
    pub sim: SimConfig,
}

impl Default for CcAdversaryConfig {
    fn default() -> Self {
        CcAdversaryConfig {
            space: CcActionSpace::default(),
            episode_steps: 1000,
            action_repeat: 1,
            ewma_alpha: 0.1,
            smoothing_coef: 0.01,
            sim: SimConfig::default(),
        }
    }
}

/// A recorded adversarial CC trace: the per-interval link parameters, plus
/// what the flow achieved — the artifact behind Figs. 5 and 6.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CcTrace {
    pub params: Vec<LinkParams>,
    pub throughput_mbps: Vec<f64>,
    pub utilization: Vec<f64>,
}

impl CcTrace {
    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Mean utilization over the trace — the paper's headline is BBR pulled
    /// down to 45–65 % of capacity.
    pub fn mean_utilization(&self) -> f64 {
        nn::ops::mean(&self.utilization)
    }

    /// Convert to the common [`traces::Trace`] format (30 ms segments).
    pub fn to_trace(&self, name: &str) -> traces::Trace {
        traces::Trace::new(
            name,
            self.params
                .iter()
                .map(|p| traces::Segment {
                    duration_s: 0.030,
                    bandwidth_mbps: p.bandwidth_mbps,
                    latency_ms: p.latency_ms,
                    loss_rate: p.loss_rate,
                })
                .collect(),
        )
    }
}

/// The online congestion-control adversary environment.
///
/// A fresh protocol instance and simulator are built per episode from the
/// supplied factory (the protocol carries state such as BBR's filters).
/// The factory is shared behind an [`Arc`] so the environment can be
/// cloned into `exec`-driven rollout workers.
pub struct CcAdversaryEnv {
    make_cc: Arc<dyn Fn() -> Box<dyn CongestionControl> + Send + Sync>,
    cfg: CcAdversaryConfig,
    sim: Option<FlowSim>,
    step_count: usize,
    episode: u64,
    ewma_bw: f64,
    ewma_lat: f64,
    last_obs: [f64; 2],
    /// Trace of the current/last episode.
    trace: CcTrace,
    /// Raw policy actions this episode (flat triples), the replay log for
    /// [`Snapshot`]: the simulator is seeded per episode and `reset`/`step`
    /// draw nothing from the policy RNG, so (sim seed, episode, actions)
    /// reconstructs the full state.
    ep_actions: Vec<f64>,
}

impl CcAdversaryEnv {
    pub fn new(
        make_cc: Box<dyn Fn() -> Box<dyn CongestionControl> + Send + Sync>,
        cfg: CcAdversaryConfig,
    ) -> Self {
        CcAdversaryEnv {
            make_cc: Arc::from(make_cc),
            cfg,
            sim: None,
            step_count: 0,
            episode: 0,
            ewma_bw: 0.0,
            ewma_lat: 0.0,
            last_obs: [0.0; 2],
            trace: CcTrace::default(),
            ep_actions: Vec::new(),
        }
    }

    /// The recorded trace of the current/last episode.
    pub fn episode_trace(&self) -> &CcTrace {
        &self.trace
    }

    /// Replace the simulator seed base (rollout workers decorrelate their
    /// clones with this before the first episode).
    pub fn set_sim_seed(&mut self, seed: u64) {
        self.cfg.sim.seed = seed;
    }

    /// Smoothing factor `S`: normalized deviation of the current bandwidth
    /// and latency from their EWMAs.
    fn smoothing(&self, p: &LinkParams) -> f64 {
        let (bw_lo, bw_hi) = self.cfg.space.bandwidth_mbps;
        let (lat_lo, lat_hi) = self.cfg.space.latency_ms;
        (p.bandwidth_mbps - self.ewma_bw).abs() / (bw_hi - bw_lo)
            + (p.latency_ms - self.ewma_lat).abs() / (lat_hi - lat_lo)
    }
}

/// A clone is an independent environment sharing the protocol factory: it
/// starts before its first episode (the in-flight simulator, if any, is
/// not carried over — `reset` rebuilds it), which is exactly the state a
/// rollout worker wants. Note clones also restart the per-episode
/// simulator-seed sequence; use [`CcAdversaryEnv::set_sim_seed`] to
/// decorrelate packet-level randomness across workers if needed.
impl Clone for CcAdversaryEnv {
    fn clone(&self) -> Self {
        CcAdversaryEnv {
            make_cc: Arc::clone(&self.make_cc),
            cfg: self.cfg.clone(),
            sim: None,
            step_count: 0,
            episode: 0,
            ewma_bw: 0.0,
            ewma_lat: 0.0,
            last_obs: [0.0; 2],
            trace: CcTrace::default(),
            ep_actions: Vec::new(),
        }
    }
}

impl Env for CcAdversaryEnv {
    fn obs_dim(&self) -> usize {
        2 // the paper's two inputs: link utilization and queuing delay
    }

    fn action_space(&self) -> ActionSpace {
        // normalized; see [`CcActionSpace::from_unit`]
        ActionSpace::Continuous { low: vec![-1.0; 3], high: vec![1.0; 3] }
    }

    fn reset(&mut self, _rng: &mut StdRng) -> Vec<f64> {
        self.episode += 1;
        let mid = LinkParams::new(
            (self.cfg.space.bandwidth_mbps.0 + self.cfg.space.bandwidth_mbps.1) / 2.0,
            (self.cfg.space.latency_ms.0 + self.cfg.space.latency_ms.1) / 2.0,
            0.0,
        );
        let sim_cfg = SimConfig { seed: self.cfg.sim.seed ^ self.episode, ..self.cfg.sim.clone() };
        self.sim = Some(FlowSim::new((self.make_cc)(), mid, sim_cfg));
        self.step_count = 0;
        self.ewma_bw = mid.bandwidth_mbps;
        self.ewma_lat = mid.latency_ms;
        self.last_obs = [0.0, 0.0];
        self.trace = CcTrace::default();
        self.ep_actions.clear();
        vec![0.0, 0.0]
    }

    fn step(&mut self, action: &Action, _rng: &mut StdRng) -> Step {
        self.ep_actions.extend_from_slice(action.vector());
        let p = self.cfg.space.from_unit(action.vector());
        let smoothing = self.smoothing(&p);
        let sim = self.sim.as_mut().expect("reset() before step()");
        sim.set_link(p);
        // hold the decision for `action_repeat` paper-granularity intervals
        let repeat = self.cfg.action_repeat.max(1);
        let mut util_sum = 0.0;
        for _ in 0..repeat {
            let stats = sim.run_for(INTERVAL);
            util_sum += stats.utilization;
            self.trace.params.push(p);
            self.trace.throughput_mbps.push(stats.throughput_mbps);
            self.trace.utilization.push(stats.utilization);
        }
        let utilization = util_sum / repeat as f64;

        let a = self.cfg.ewma_alpha;
        self.ewma_bw = (1.0 - a) * self.ewma_bw + a * p.bandwidth_mbps;
        self.ewma_lat = (1.0 - a) * self.ewma_lat + a * p.latency_ms;

        let reward = 1.0 - utilization - p.loss_rate - self.cfg.smoothing_coef * smoothing;

        // observation: utilization and queuing delay (normalized to ~O(1))
        let qd = sim.queue_delay_ms();
        self.last_obs = [utilization, qd / 100.0];

        self.step_count += 1;
        Step {
            obs: self.last_obs.to_vec(),
            reward,
            done: self.step_count >= self.cfg.episode_steps,
        }
    }

    /// Give each rollout-worker clone its own per-episode simulator seed
    /// sequence. XORing preserves the user-configured base seed while
    /// separating the packet-level randomness of sibling workers.
    fn decorrelate(&mut self, stream_seed: u64) {
        let mixed = self.cfg.sim.seed ^ stream_seed;
        self.set_sim_seed(mixed);
    }
}

/// Serialized mid-episode position. The simulator itself is not stored:
/// it is a deterministic function of (sim seed, episode counter, replayed
/// actions), since `reset` seeds it as `sim_seed ^ episode` and neither
/// `reset` nor `step` draws from the policy RNG.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct CcAdvSnap {
    started: bool,
    sim_seed: u64,
    episode: u64,
    /// Flat raw action triples, chunked back into 3-vectors on replay.
    actions: Vec<f64>,
}

impl Snapshot for CcAdversaryEnv {
    fn snapshot(&self) -> Value {
        CcAdvSnap {
            started: self.sim.is_some(),
            sim_seed: self.cfg.sim.seed,
            episode: self.episode,
            actions: self.ep_actions.clone(),
        }
        .to_value()
    }

    fn restore(&mut self, v: &Value) -> Result<(), serde::Error> {
        let snap = CcAdvSnap::from_value(v)?;
        if !snap.actions.len().is_multiple_of(3) {
            return Err(serde::Error::custom(format!(
                "CC action log has {} values, expected a multiple of 3",
                snap.actions.len()
            )));
        }
        self.cfg.sim.seed = snap.sim_seed;
        self.episode = snap.episode;
        if !snap.started {
            self.sim = None;
            self.step_count = 0;
            return Ok(());
        }
        if snap.episode == 0 {
            return Err(serde::Error::custom(
                "CC snapshot claims a started episode but its counter is 0",
            ));
        }
        // reset() advances the episode counter before seeding, so rewind by
        // one and let it rebuild the simulator with the recorded seed.
        self.episode = snap.episode - 1;
        let mut rng = StdRng::seed_from_u64(0); // reset/step ignore the RNG
        self.reset(&mut rng);
        for raw in snap.actions.chunks(3) {
            self.step(&Action::Continuous(raw.to_vec()), &mut rng);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc::Bbr;
    use rand::SeedableRng;

    fn env(steps: usize) -> CcAdversaryEnv {
        CcAdversaryEnv::new(
            Box::new(|| Box::new(Bbr::new())),
            CcAdversaryConfig { episode_steps: steps, ..CcAdversaryConfig::default() },
        )
    }

    #[test]
    fn table1_ranges_enforced() {
        let sp = CcActionSpace::default();
        let p = sp.to_params(&[100.0, -5.0, 0.5]);
        assert_eq!(p.bandwidth_mbps, 24.0);
        assert_eq!(p.latency_ms, 15.0);
        assert!((p.loss_rate - 0.10).abs() < 1e-12);
        let p2 = sp.to_params(&[10.0, 30.0, 0.05]);
        assert_eq!(p2.bandwidth_mbps, 10.0);
        assert_eq!(p2.latency_ms, 30.0);
        assert_eq!(p2.loss_rate, 0.05);
    }

    #[test]
    fn episode_length_is_config() {
        let mut e = env(50);
        let mut rng = StdRng::seed_from_u64(0);
        e.reset(&mut rng);
        let mut n = 0;
        loop {
            let s = e.step(&CcActionSpace::default().action_for(12.0, 30.0, 0.0), &mut rng);
            n += 1;
            if s.done {
                break;
            }
            assert!(n <= 50);
        }
        assert_eq!(n, 50);
        assert_eq!(e.episode_trace().len(), 50);
    }

    #[test]
    fn benign_constant_link_yields_low_reward() {
        // BBR saturates a constant clean link, so 1 − U ≈ 0: a lazy
        // adversary earns nothing (the paper's "trivial examples are not
        // interesting" requirement is enforced by the reward itself)
        let mut e = env(400);
        let mut rng = StdRng::seed_from_u64(0);
        e.reset(&mut rng);
        let mut tail_rewards = Vec::new();
        for i in 0..400 {
            let s = e.step(&CcActionSpace::default().action_for(12.0, 30.0, 0.0), &mut rng);
            if i >= 200 {
                tail_rewards.push(s.reward);
            }
        }
        let mean = nn::ops::mean(&tail_rewards);
        assert!(mean < 0.25, "steady BBR should utilize the link: reward {mean}");
    }

    #[test]
    fn loss_term_costs_the_adversary() {
        let mut e = env(100);
        let mut rng = StdRng::seed_from_u64(0);
        e.reset(&mut rng);
        // maximal loss: utilization collapses but L is charged; compare the
        // instantaneous reward structure
        let s = e.step(&CcActionSpace::default().action_for(12.0, 30.0, 0.10), &mut rng);
        // reward = 1 - U - 0.1 - smoothing; U ≤ 1 so reward ≤ 0.9
        assert!(s.reward <= 0.91);
    }

    #[test]
    fn observations_are_utilization_and_queue_delay() {
        let mut e = env(100);
        let mut rng = StdRng::seed_from_u64(0);
        let obs0 = e.reset(&mut rng);
        assert_eq!(obs0, vec![0.0, 0.0]);
        let mut last = vec![];
        for _ in 0..100 {
            last = e.step(&CcActionSpace::default().action_for(6.0, 15.0, 0.0), &mut rng).obs;
        }
        assert!(last[0] > 0.5, "BBR should be utilizing by now: {last:?}");
        assert!(last[1] >= 0.0);
    }

    #[test]
    fn trace_roundtrips_to_common_format() {
        let mut e = env(10);
        let mut rng = StdRng::seed_from_u64(0);
        e.reset(&mut rng);
        for _ in 0..10 {
            e.step(&CcActionSpace::default().action_for(8.0, 20.0, 0.01), &mut rng);
        }
        let t = e.episode_trace().to_trace("adv");
        assert_eq!(t.segments.len(), 10);
        assert!((t.duration_s() - 0.3).abs() < 1e-9);
        assert_eq!(t.segments[0].bandwidth_mbps, 8.0);
    }

    #[test]
    fn snapshot_restore_resumes_mid_episode_exactly() {
        let mut e = env(40);
        let mut rng = StdRng::seed_from_u64(2);
        // advance into the second episode so the counter matters
        e.reset(&mut rng);
        for _ in 0..40 {
            e.step(&CcActionSpace::default().action_for(9.0, 25.0, 0.01), &mut rng);
        }
        e.reset(&mut rng);
        for i in 0..7 {
            let bw = 6.0 + i as f64;
            e.step(&CcActionSpace::default().action_for(bw, 20.0, 0.02), &mut rng);
        }

        let snap = e.snapshot();
        let mut twin = env(40);
        twin.restore(&snap).unwrap();

        for i in 0..10 {
            let bw = 24.0 - i as f64;
            let act = CcActionSpace::default().action_for(bw, 40.0, 0.0);
            let a = e.step(&act, &mut rng);
            let b = twin.step(&act, &mut rng);
            assert_eq!(a.obs, b.obs, "step {i}");
            assert_eq!(a.reward.to_bits(), b.reward.to_bits(), "step {i}");
            assert_eq!(a.done, b.done, "step {i}");
        }
        assert_eq!(e.episode_trace().params.len(), twin.episode_trace().params.len());
    }

    #[test]
    fn snapshot_restore_rejects_malformed_logs() {
        let e = env(10);
        let snap = e.snapshot(); // unstarted
        let mut other = env(10);
        other.restore(&snap).unwrap();
        assert!(other.sim.is_none());

        let bad = CcAdvSnap { started: true, sim_seed: 1, episode: 1, actions: vec![0.0; 4] };
        assert!(other.restore(&bad.to_value()).is_err(), "len not a multiple of 3");
        let bad = CcAdvSnap { started: true, sim_seed: 1, episode: 0, actions: vec![] };
        assert!(other.restore(&bad.to_value()).is_err(), "started with episode 0");
    }

    #[test]
    fn decorrelate_changes_episode_noise_but_stays_deterministic() {
        let run = |stream_seed: Option<u64>| {
            let mut e = env(60);
            if let Some(s) = stream_seed {
                e.decorrelate(s);
            }
            let mut rng = StdRng::seed_from_u64(0);
            e.reset(&mut rng);
            let mut total = 0.0;
            for i in 0..60 {
                let bw = 6.0 + (i % 13) as f64;
                total +=
                    e.step(&CcActionSpace::default().action_for(bw, 20.0, 0.05), &mut rng).reward;
            }
            total
        };
        assert_eq!(run(Some(11)), run(Some(11)), "decorrelated runs stay deterministic");
        assert_ne!(
            run(Some(11)),
            run(Some(12)),
            "different stream seeds must draw different packet-level noise"
        );
    }

    #[test]
    fn episodes_are_reproducible_by_seed() {
        let run = || {
            let mut e = env(100);
            let mut rng = StdRng::seed_from_u64(5);
            e.reset(&mut rng);
            let mut total = 0.0;
            for i in 0..100 {
                let bw = 6.0 + (i % 10) as f64;
                total +=
                    e.step(&CcActionSpace::default().action_for(bw, 20.0, 0.02), &mut rng).reward;
            }
            total
        };
        assert_eq!(run(), run());
    }
}
