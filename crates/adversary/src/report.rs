//! Reporting helpers for the paper's figures: QoE CDFs (Fig. 1) and
//! cross-protocol QoE ratios (Fig. 2).

use serde::{Deserialize, Serialize};

/// Empirical CDF points `(value, F(value))`, sorted by value.
///
/// Sorting/validation is shared with the percentile helpers via
/// [`nn::ops::try_sorted`]; NaN QoE values panic, as before.
pub fn qoe_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let v = nn::ops::try_sorted(values).expect("QoE values must not be NaN");
    let n = v.len() as f64;
    v.into_iter().enumerate().map(|(i, x)| (x, (i + 1) as f64 / n)).collect()
}

/// The Fig. 2 statistic: per-trace ratio of the *other* protocol's QoE to
/// the *target* protocol's QoE, summarized by mean / 95th percentile / max.
///
/// Ratios are only meaningful for positive QoE; the paper's reported QoE
/// stays within ≈0.25–2.6, but our adversaries push weaker targets to
/// negative QoE, where a raw ratio flips sign or explodes. Per-trace QoE is
/// therefore clamped below at 0.25 (the bottom of the paper's observed
/// scale) before the ratio — a crushed target reads as a large-but-bounded
/// ratio. `target_worse_frac` is computed on the raw values and is
/// unaffected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioSummary {
    pub mean: f64,
    pub p95: f64,
    pub max: f64,
    /// Fraction of traces where the target did worse than the other
    /// protocol (the paper reports "over 75 %").
    pub target_worse_frac: f64,
    pub n: usize,
}

impl RatioSummary {
    /// `target[i]` and `other[i]` are the two protocols' mean QoE on trace
    /// `i` (the adversary targeted `target`). Panics on malformed input;
    /// see [`RatioSummary::try_compute`].
    pub fn compute(target: &[f64], other: &[f64]) -> Self {
        match Self::try_compute(target, other) {
            Ok(s) => s,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Non-panicking [`RatioSummary::compute`] (the workspace `try_*`
    /// convention): errors on length mismatch, empty input, or NaN QoE.
    pub fn try_compute(target: &[f64], other: &[f64]) -> Result<Self, String> {
        if target.len() != other.len() {
            return Err("paired per-trace QoE required".to_string());
        }
        if target.is_empty() {
            return Err("need at least one trace".to_string());
        }
        const FLOOR: f64 = 0.25;
        let ratios: Vec<f64> = target
            .iter()
            .zip(other.iter())
            .map(|(&t, &o)| (o.max(FLOOR)) / (t.max(FLOOR)))
            .collect();
        let worse = target.iter().zip(other.iter()).filter(|(t, o)| t < o).count();
        Ok(RatioSummary {
            mean: nn::ops::mean(&ratios),
            p95: nn::ops::try_percentile(&ratios, 95.0)?,
            max: ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            target_worse_frac: worse as f64 / target.len() as f64,
            n: target.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let cdf = qoe_cdf(&[2.0, 1.0, 3.0, 1.5]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf[0], (1.0, 0.25));
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(qoe_cdf(&[]).is_empty());
    }

    #[test]
    fn ratio_summary_basics() {
        let target = [1.0, 1.0, 2.0, 0.5];
        let other = [2.0, 1.5, 1.0, 1.0];
        let s = RatioSummary::compute(&target, &other);
        assert_eq!(s.n, 4);
        // ratios: 2.0, 1.5, 0.5, 2.0 -> mean 1.5
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(s.max, 2.0);
        assert!((s.target_worse_frac - 0.75).abs() < 1e-12);
    }

    #[test]
    fn try_compute_reports_malformed_input() {
        assert!(RatioSummary::try_compute(&[1.0], &[]).unwrap_err().contains("paired"));
        assert!(RatioSummary::try_compute(&[], &[]).unwrap_err().contains("at least one"));
        let ok = RatioSummary::try_compute(&[1.0, 2.0], &[2.0, 1.0]).unwrap();
        assert_eq!(ok.n, 2);
    }

    #[test]
    fn crushed_target_floors_not_flips() {
        let s = RatioSummary::compute(&[-3.0], &[1.0]);
        assert!((s.mean - 4.0).abs() < 1e-12, "floor 0.25 bounds the ratio: {}", s.mean);
        assert_eq!(s.target_worse_frac, 1.0);
    }
}
