//! The paper's core contribution: an RL-driven adversarial framework that
//! generates network conditions under which a target protocol performs far
//! from optimally — and uses those conditions to make protocols more robust.
//!
//! The adversary is an *online* agent (§2.1): each step it observes the
//! target protocol's behaviour and emits the next network conditions. Its
//! reward (Eq. 1) is
//!
//! ```text
//! r_adversary = r_opt − r_protocol − p_smoothing
//! ```
//!
//! so trivially hostile conditions (drop everything) earn nothing — the
//! adversary must find conditions where the protocol *could have done well
//! but didn't*, and the smoothing penalty keeps traces explainable.
//!
//! * [`abr_env`] — adversary vs. ABR protocols (per-chunk bandwidth in
//!   0.8–4.8 Mbit/s; reward gap vs. the windowed offline optimum).
//! * [`cc_env`] — adversary vs. congestion control (30 ms control over
//!   bandwidth/latency/loss in the Table 1 ranges; reward `1 − U − L −
//!   0.01·S`).
//! * [`cross_env`] — the multi-flow variant: the link is honest and the
//!   adversary instead drives a cross-traffic sender's rate schedule at a
//!   shared bottleneck, rewarded for throughput/delay damage to the victim
//!   flow net of a rate cost.
//! * [`train`] — PPO adversary construction with the paper's architectures
//!   (32×16 for ABR, a single 4-neuron layer for CC).
//! * [`trace_gen`] — rolling a trained adversary into reproducible traces,
//!   plus the random-trace baselines.
//! * [`report`] — QoE CDFs and ratio summaries (Figs. 1 and 2).
//! * [`robustify`] — the §2.3 pipeline: pause Pensieve training, inject
//!   adversarial traces, resume (Fig. 4).
//! * [`trace_based`] — the alternative §2.1 design: a whole-trace adversary
//!   via cross-entropy search, for contrast with the online one.

pub mod abr_env;
pub mod cc_env;
pub mod cross_env;
pub mod report;
pub mod robustify;
pub mod trace_based;
pub mod trace_gen;
pub mod train;

pub use abr_env::{AbrAdversaryConfig, AbrAdversaryEnv, ChunkNetwork};
pub use cc_env::{CcActionSpace, CcAdversaryConfig, CcAdversaryEnv, CcTrace};
pub use cross_env::{CrossTrace, CrossTrafficConfig, CrossTrafficEnv, CROSS_FLOW, VICTIM_FLOW};
pub use report::{qoe_cdf, RatioSummary};
pub use robustify::{
    robustify_pensieve, robustify_variants, try_robustify_pensieve, try_robustify_variants,
    RobustifyConfig, RobustifyOutcome,
};
pub use trace_based::{cem_search, score_trace, CemConfig, CemOutcome};
pub use trace_gen::{
    abr_traces_to_corpus, generate_abr_traces, generate_abr_traces_with, generate_cc_trace,
    generate_cc_trace_with, random_abr_traces, replay_abr_trace, replay_abr_trace_detailed,
    replay_cc_schedule, try_abr_traces_to_corpus, try_generate_abr_traces_with, AbrTrace,
};
pub use train::{
    train_abr_adversary, train_cc_adversary, train_cross_adversary, try_train_abr_adversary,
    try_train_cc_adversary, try_train_cross_adversary, AdversaryTrainConfig,
};
