//! Offline, in-tree substitute for `serde_json` (the subset this workspace
//! uses): [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! `serde` facade's [`Value`] tree.
//!
//! Wire compatibility notes:
//! * floats print via Rust's shortest-roundtrip `Display`, so every value
//!   re-parses bit-exactly (the behavior the workspace previously got from
//!   serde_json's `float_roundtrip` feature);
//! * NaN/Infinity serialize as `null` (as upstream serde_json does for
//!   non-finite floats in lossy mode) and `null` deserializes to NaN when a
//!   float is requested — `TrainReport.mean_episode_reward` relies on this;
//! * the parser accepts the full JSON grammar, including everything in the
//!   cached artifacts under `results/`.

pub use serde::Error;
use serde::Value;

/// Serialize to compact JSON. Infallible for tree-shaped data; the
/// `Result` mirrors the upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into any `serde::Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

// ------------------------------------------------------------------ writer

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display is shortest-roundtrip; integral floats print without a
    // fraction ("4"), which re-parses as an integer Value — the serde
    // facade's numeric Deserialize impls accept either representation.
    out.push_str(&x.to_string());
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // surrogate pairs for astral-plane characters
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + (((cp - 0xD800) as u32) << 10)
                                        + (lo - 0xDC00) as u32;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp as u32)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                // multi-byte UTF-8: copy the full sequence through
                b if b < 0x80 => out.push(b as char),
                b => {
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|c| std::str::from_utf8(c).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let cp = u16::from_str_radix(chunk, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if n == 0 {
                        return Ok(Value::F64(-0.0)); // keep the sign bit of -0
                    }
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::I64(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&1.5_f64).unwrap(), "1.5");
        assert_eq!(to_string(&4.0_f64).unwrap(), "4");
        assert_eq!(from_str::<f64>("4").unwrap(), 4.0);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
        assert_eq!(from_str::<i64>("-12").unwrap(), -12);
        assert_eq!(to_string(&true).unwrap(), "true");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1_f64, 1.0 / 3.0, 2.2250738585072014e-308, 1.7976931348623157e308, -0.0] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} did not roundtrip");
        }
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let s = "a \"quoted\" line\nwith\ttabs \\ and unicode: héllo 🌍".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(from_str::<String>(r#""é🌍""#).unwrap(), "é🌍");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0_f64, 2.0_f64), (3.5, -0.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3.5,-0.25]]");
        let back: Vec<(f64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let opt: Option<Vec<f64>> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<Vec<f64>>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = serde::Value::Object(vec![
            ("name".into(), serde::Value::Str("trace".into())),
            (
                "segments".into(),
                serde::Value::Array(vec![serde::Value::F64(1.25), serde::Value::Null]),
            ),
            ("empty".into(), serde::Value::Array(vec![])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"segments\": ["));
        let back: serde::Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 , 3 ] ").unwrap(), vec![1, 2, 3]);
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
