//! The arena's headline guarantee, tested end-to-end: kill the process at
//! an arbitrary point (here: the injected `pool.write` panic in the middle
//! of generation 2) and re-invoke with the same config — the completed run
//! must be **byte-identical** to an uninterrupted one, both the trajectory
//! CSV and the persisted pool file.
//!
//! One `#[test]` only: the fault plan is a process-wide registry, so the
//! kill scenario must not run concurrently with another arena.

use arena::{run_arena, ArenaConfig};
use rl::PpoConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Micro arena: 3 generations (gen 0 + 2 adversarial), budgets sized for
/// a debug-build test. Determinism is what's under test, not quality.
fn micro_cfg(dir: PathBuf) -> ArenaConfig {
    ArenaConfig {
        generations: 2,
        initial_steps: 960,
        steps_per_gen: 480,
        protocol_ppo: PpoConfig {
            n_steps: 480,
            minibatch_size: 96,
            epochs: 2,
            lr: 3e-4,
            ent_coef: 0.01,
            ..PpoConfig::default()
        },
        adversary: adversary::AdversaryTrainConfig {
            total_steps: 480,
            ppo: PpoConfig { n_steps: 480, minibatch_size: 96, epochs: 2, ..PpoConfig::default() },
            ..adversary::AdversaryTrainConfig::default()
        },
        traces_per_gen: 3,
        benign_traces: 4,
        heldout_benign: 4,
        max_pool_mix: 8,
        fleet_sessions: 32,
        fleet_shards: 2,
        seed: 11,
        dir,
        checkpoint_every: 1,
        ..ArenaConfig::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("advnet-arena-kill-resume").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn killed_and_resumed_arena_is_byte_identical() {
    let dir_a = fresh_dir("uninterrupted");
    let dir_b = fresh_dir("killed");

    // ---- run A: straight through
    let out_a = run_arena(&micro_cfg(dir_a.clone())).expect("uninterrupted arena");
    assert_eq!(out_a.rows.len(), 3, "gen 0 + 2 adversarial generations");

    // ---- run B: die at the *second* pool write — i.e. in the middle of
    // generation 2, after its adversary leg and harvest but before its
    // protocol leg. The plan must be armed through the env var (not
    // `fault::install`) because every `Checkpointer::new` inside the
    // arena calls `fault::reload_from_env`, which would wipe a plan the
    // environment does not corroborate.
    std::env::set_var("ADVNET_FAULT_PLAN", "panic@pool.write:2");
    fault::reload_from_env().expect("valid plan");
    let killed = catch_unwind(AssertUnwindSafe(|| run_arena(&micro_cfg(dir_b.clone()))));
    std::env::remove_var("ADVNET_FAULT_PLAN");
    fault::clear();
    assert!(killed.is_err(), "the injected pool.write panic must fire");
    // the crash landed between checkpoints: generation 1 is durable,
    // generation 2 is in flight
    assert_eq!(
        std::fs::read_to_string(dir_b.join("trajectory.csv")).unwrap().lines().count(),
        3, // header + gen 0 + gen 1
        "gen 2 must not have committed a row yet"
    );

    // ---- resume: same config, same dir, no fault plan
    let out_b = run_arena(&micro_cfg(dir_b.clone())).expect("resumed arena");

    assert_eq!(out_a.rows, out_b.rows, "trajectories must match row-for-row");
    for file in ["trajectory.csv", "pool.ckpt", "arena.state"] {
        let a = std::fs::read(dir_a.join(file)).unwrap();
        let b = std::fs::read(dir_b.join(file)).unwrap();
        assert_eq!(a, b, "{file} must be byte-identical across kill+resume");
    }

    // ---- idempotent tail: re-invoking a finished arena is a fast no-op
    // that leaves every artifact untouched
    let again = run_arena(&micro_cfg(dir_b.clone())).expect("re-run of finished arena");
    assert_eq!(again.rows, out_b.rows);
    assert_eq!(
        std::fs::read(dir_a.join("pool.ckpt")).unwrap(),
        std::fs::read(dir_b.join("pool.ckpt")).unwrap()
    );

    std::fs::remove_dir_all(dir_a).ok();
    std::fs::remove_dir_all(dir_b).ok();
}
