//! Property tests for the persistent trace pool's determinism contract:
//! the pool after a generation's full pass (rescore → evict → insert →
//! save) must be independent of the order the harvest batch arrives in,
//! and a redone pass must land on the same bytes — the two properties
//! the arena's bit-identical kill+resume leans on.

use arena::TracePool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traces::{Segment, Trace};

/// A deterministic synthetic trace whose content is a function of `tag`.
fn trace(tag: u64) -> Trace {
    let bw = 0.8 + 0.1 * (tag % 40) as f64;
    Trace::new(
        format!("prop-{tag}"),
        vec![Segment::bw(4.0, bw, 80.0), Segment::bw(4.0, bw + 0.05, 80.0)],
    )
}

/// Deterministic pseudo-damage for `(tag, gen)`.
fn damage(tag: u64, gen: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(tag.wrapping_mul(31).wrapping_add(gen));
    rng.gen_range(-0.5..1.0)
}

/// A seeded permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..(i + 1) as u64) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Run `gens` generations of the standard pool pass over the same tag
/// batches, feeding each generation's inserts in the order given by
/// `order_seed`. Returns the final pool.
fn run_passes(tags: &[u64], gens: u64, order_seed: u64, evict_damage: f64) -> TracePool {
    let mut pool = TracePool::new();
    for g in 1..=gens {
        pool.rescore(g, |t| {
            // recover the tag from the trace's first-segment bandwidth
            let tag = ((t.segments[0].bandwidth_mbps - 0.8) / 0.1).round() as u64;
            damage(tag, g)
        });
        pool.evict(g, evict_damage, 1);
        // damage is keyed by the item's original batch position, so two
        // items with identical content can carry different damages —
        // the permutation then exercises the commutative max-merge
        for &i in &permutation(tags.len(), order_seed.wrapping_add(g)) {
            pool.insert(trace(tags[i]), damage(i as u64, g), g);
        }
    }
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Insert order never changes the pool: entries are kept in
    /// canonical hash order and same-generation duplicate merges are
    /// commutative, so any two arrival orders of the same batches give
    /// structurally equal pools — including the eviction bookkeeping.
    #[test]
    fn pool_state_is_insert_order_invariant(
        seed_a in 0_u64..1_000,
        seed_b in 1_000_u64..2_000,
        n in 1_usize..24,
        gens in 1_u64..5,
    ) {
        // duplicate tags on purpose: `% 40` in `trace()` collides tags
        // into identical content, exercising the dedup merge path
        let tags: Vec<u64> = (0..n as u64).map(|i| i % ((n as u64 / 2).max(1))).collect();
        let a = run_passes(&tags, gens, seed_a, 0.2);
        let b = run_passes(&tags, gens, seed_b, 0.2);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.evicted_total, b.evicted_total);
    }

    /// Redoing the last generation's pass (what a resumed process does
    /// after a crash between the pool save and the arena state save) is
    /// a no-op: the per-generation guards make rescore and evict skip,
    /// and re-inserting the same batch merges idempotently.
    #[test]
    fn redo_of_a_generation_pass_is_idempotent(
        seed in 0_u64..1_000,
        n in 1_usize..16,
        gens in 1_u64..4,
    ) {
        let tags: Vec<u64> = (0..n as u64).collect();
        let done = run_passes(&tags, gens, seed, 0.2);
        let mut redone = done.clone();
        // blindly repeat generation `gens`'s full pass
        redone.rescore(gens, |_| panic!("rescore must be guarded on redo"));
        redone.evict(gens, 0.2, 1);
        for &t in &tags {
            redone.insert(trace(t), damage(t % 40, gens), gens);
        }
        prop_assert_eq!(&redone, &done);
    }

    /// Serialization is canonical: structurally equal pools produce
    /// byte-identical files regardless of the insert order that built
    /// them (the kill+resume test compares pool files with `cmp`).
    #[test]
    fn equal_pools_serialize_to_equal_bytes(
        seed_a in 0_u64..500,
        seed_b in 500_u64..1_000,
        n in 1_usize..16,
    ) {
        let tags: Vec<u64> = (0..n as u64).collect();
        let a = run_passes(&tags, 2, seed_a, 0.2);
        let b = run_passes(&tags, 2, seed_b, 0.2);
        let dir = std::env::temp_dir().join("advnet-arena-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let pa = dir.join(format!("a-{seed_a}-{seed_b}-{n}.pool"));
        let pb = dir.join(format!("b-{seed_a}-{seed_b}-{n}.pool"));
        a.try_save(&pa).unwrap();
        b.try_save(&pb).unwrap();
        let (ba, bb) = (std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
        prop_assert_eq!(ba, bb);
    }
}
