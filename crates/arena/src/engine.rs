//! The generational self-play loop.
//!
//! One *generation* is one turn of the arms race:
//!
//! 1. **Adversary leg** — train a fresh PPO adversary against the current
//!    protocol checkpoint (paper §2.3 stage 2, repeated every generation
//!    instead of once).
//! 2. **Harvest** — roll the adversary into `traces_per_gen` reproducible
//!    traces and measure each one's *damage*: the held-out benign
//!    baseline QoE minus the protocol's QoE on that trace.
//! 3. **Pool pass** — re-score the surviving pool against the current
//!    protocol, evict traces the protocol has beaten for
//!    `evict_patience` consecutive generations, then insert the new
//!    harvest (deduplicated by content hash) and persist the pool.
//! 4. **Protocol leg** — resume protocol training on the benign corpus
//!    plus the pool's damage-weighted training mix.
//! 5. **Evaluate** — run the protocol over the fixed held-out benign and
//!    adversarial fleets ([`serve::run_fleet`]) and append one row to
//!    the robustness trajectory.
//!
//! Generation 0 is the seed: an initial protocol leg on the benign corpus
//! alone, then the same fleet evaluation.
//!
//! # Kill + resume
//!
//! Every leg checkpoints through `rl::ckpt`, the pool and the arena state
//! file use the same checksummed atomic envelope, and all inter-leg
//! computation (harvest, scoring, evaluation) is deterministic. Killing
//! the process at *any* point and re-invoking [`run_arena`] with the same
//! config therefore completes bit-identically to an uninterrupted run:
//! finished legs fast-forward from their checkpoints, the in-flight leg
//! resumes mid-iteration, and the pool's per-generation guards make the
//! re-run of an interrupted generation's pool pass a byte-exact redo
//! (regression-tested in `tests/kill_resume.rs`).
//!
//! Each generation's protocol leg starts at an episode boundary (the
//! trainer's in-flight episode continuation is cleared before the corpus
//! changes). This is a deliberate semantic: an episode must never
//! straddle two different corpora, because resuming such an episode after
//! a crash would replay it against the wrong trace.

use crate::pool::{PoolError, TracePool};
use abr::env::AbrTrainEnv;
use abr::protocols::pensieve::PENSIEVE_OBS_DIM;
use abr::{Pensieve, Video};
use adversary::robustify::eval_pensieve;
use adversary::{
    try_abr_traces_to_corpus, try_generate_abr_traces_with, try_train_abr_adversary,
    AbrAdversaryConfig, AbrAdversaryEnv, AdversaryTrainConfig,
};
use rl::ckpt::{load_train_checkpoint, read_checkpoint_file, write_checkpoint_file};
use rl::{Checkpointer, Ppo, PpoConfig, TrainError};
use serde::{Deserialize, Serialize};
use serve::{run_fleet, FleetConfig, FleetPolicy};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use traces::{fcc_like, hsdpa_like, GenConfig, Trace, TraceFamily, TraceStream};

/// Per-generation seed mixer (golden-ratio increment, as in
/// `exec::split_seed`) so every generation's adversary and harvest get
/// decorrelated but reproducible randomness.
fn gen_seed(base: u64, g: u64) -> u64 {
    base ^ g.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Knobs of one arena run. The run is a pure function of this value:
/// same config + same (possibly partial) `dir` contents → same result.
#[derive(Debug, Clone)]
pub struct ArenaConfig {
    /// Adversarial generations to run *after* generation 0 (the initial
    /// benign-only leg). The trajectory ends with `generations + 1` rows.
    pub generations: u64,
    /// Protocol training steps for generation 0.
    pub initial_steps: usize,
    /// Protocol training steps per adversarial generation.
    pub steps_per_gen: usize,
    /// Protocol (Pensieve) PPO settings; the seed is overridden by
    /// [`ArenaConfig::seed`].
    pub protocol_ppo: PpoConfig,
    /// Adversary training budget and PPO settings (the per-generation
    /// seed is derived from the configured one).
    pub adversary: AdversaryTrainConfig,
    /// Adversary environment settings (QoE weights, latency, window).
    pub adv_env: AbrAdversaryConfig,
    /// Traces harvested from each generation's adversary.
    pub traces_per_gen: usize,
    /// Benign training corpus size (alternating FCC-like / HSDPA-like).
    pub benign_traces: usize,
    /// Held-out benign traces used for the damage baseline.
    pub heldout_benign: usize,
    /// Damage at or below which a pooled trace counts as *beaten* this
    /// generation.
    pub evict_damage: f64,
    /// Consecutive beaten generations before a pooled trace is evicted.
    pub evict_patience: u64,
    /// Cap on distinct pool traces mixed into each protocol leg.
    pub max_pool_mix: usize,
    /// Held-out fleet size for the per-generation evaluation.
    pub fleet_sessions: usize,
    /// Fleet worker shards (the summary is shard-count invariant).
    pub fleet_shards: usize,
    /// Master seed: corpus generation, protocol trainer, adversary and
    /// harvest seeds all derive from it.
    pub seed: u64,
    /// Working directory: checkpoints, the pool file, the arena state
    /// file and `trajectory.csv` all live here. Delete it to start over.
    pub dir: PathBuf,
    /// Iterations between checkpoint writes in every training leg.
    pub checkpoint_every: usize,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        ArenaConfig {
            generations: 3,
            initial_steps: 12_000,
            steps_per_gen: 6_000,
            protocol_ppo: PpoConfig {
                n_steps: 1920,
                minibatch_size: 96,
                epochs: 5,
                lr: 3e-4,
                ent_coef: 0.01,
                ..PpoConfig::default()
            },
            adversary: AdversaryTrainConfig::default(),
            adv_env: AbrAdversaryConfig::default(),
            traces_per_gen: 16,
            benign_traces: 8,
            heldout_benign: 8,
            evict_damage: 0.05,
            evict_patience: 1,
            max_pool_mix: 16,
            fleet_sessions: 256,
            fleet_shards: 4,
            seed: 0,
            dir: PathBuf::from("results/arena"),
            checkpoint_every: 5,
        }
    }
}

/// One row of the robustness trajectory: the protocol's held-out fleet
/// performance and the pool's shape at the end of a generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationRow {
    /// Generation index (0 = initial benign-only training).
    pub generation: u64,
    /// Fleet mean QoE on the held-out benign stream.
    pub benign_mean_qoe: f64,
    /// Fleet 5th-percentile QoE on the held-out benign stream.
    pub benign_p5_qoe: f64,
    /// Fleet mean QoE on the held-out adversarial stream.
    pub adv_mean_qoe: f64,
    /// Fleet 5th-percentile QoE on the held-out adversarial stream.
    pub adv_p5_qoe: f64,
    /// Live pool entries after this generation's pool pass.
    pub pool_size: u64,
    /// Mean damage over live pool entries.
    pub pool_mean_damage: f64,
    /// Lifetime evictions (monotone across generations).
    pub pool_evicted_total: u64,
}

/// CSV header matching [`GenerationRow`]'s `Display` output.
pub const TRAJECTORY_HEADER: &str = "generation,benign_mean_qoe,benign_p5_qoe,\
adv_mean_qoe,adv_p5_qoe,pool_size,pool_mean_damage,pool_evicted_total";

impl fmt::Display for GenerationRow {
    /// One CSV row. `f64`s print via `{}` (shortest round-trip form), so
    /// equal values always produce equal bytes — the trajectory file is
    /// byte-comparable across resumed runs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{},{},{},{},{},{},{},{}",
            self.generation,
            self.benign_mean_qoe,
            self.benign_p5_qoe,
            self.adv_mean_qoe,
            self.adv_p5_qoe,
            self.pool_size,
            self.pool_mean_damage,
            self.pool_evicted_total
        )
    }
}

/// The arena's own durable state: the completed trajectory rows. Stored
/// in `dir/arena.state` with the same checksummed envelope as every
/// other checkpoint; `rows.len()` is the resume cursor.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ArenaState {
    rows: Vec<GenerationRow>,
}

/// What a completed arena run hands back.
pub struct ArenaOutcome {
    /// The full robustness trajectory, one row per generation.
    pub rows: Vec<GenerationRow>,
    /// The final pool (also persisted in `dir/pool.ckpt`).
    pub pool: TracePool,
    /// The final robustified protocol.
    pub model: Pensieve,
}

/// Why an arena run failed.
#[derive(Debug)]
pub enum ArenaError {
    /// A training leg failed (divergence, worker loss, checkpoint I/O).
    Train(TrainError),
    /// Pool persistence failed.
    Pool(PoolError),
    /// Harvested traces failed validation (e.g. a diverged adversary
    /// emitting non-physical bandwidths).
    Trace(String),
    /// Arena state or trajectory I/O failed.
    Io(String),
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::Train(e) => write!(f, "arena training leg failed: {e}"),
            ArenaError::Pool(e) => write!(f, "arena pool failure: {e}"),
            ArenaError::Trace(msg) => write!(f, "arena harvest rejected: {msg}"),
            ArenaError::Io(msg) => write!(f, "arena I/O error: {msg}"),
        }
    }
}

impl std::error::Error for ArenaError {}

impl From<TrainError> for ArenaError {
    fn from(e: TrainError) -> Self {
        ArenaError::Train(e)
    }
}

impl From<PoolError> for ArenaError {
    fn from(e: PoolError) -> Self {
        ArenaError::Pool(e)
    }
}

impl From<exec::ExecError> for ArenaError {
    fn from(e: exec::ExecError) -> Self {
        ArenaError::Train(TrainError::Worker(e))
    }
}

/// Load `dir/arena.state`, quarantining a corrupt file. When the state
/// is quarantined the pool file is quarantined alongside it: the pair is
/// one consistent snapshot, and restarting from generation 0 with the
/// finished training checkpoints still on disk fast-forwards
/// deterministically to the same bytes.
fn load_state_or_quarantine(state_path: &Path, pool_path: &Path) -> Result<ArenaState, ArenaError> {
    if !state_path.exists() {
        return Ok(ArenaState::default());
    }
    let why = match read_checkpoint_file(state_path) {
        Ok(body) => match serde_json::from_str::<ArenaState>(&body) {
            Ok(state) => return Ok(state),
            Err(e) => format!("invalid arena state body: {e}"),
        },
        Err(TrainError::Corrupt(msg)) => msg,
        Err(other) => return Err(ArenaError::Io(other.to_string())),
    };
    for p in [state_path, pool_path] {
        if p.exists() {
            let mut q = p.as_os_str().to_owned();
            q.push(".quarantined");
            if std::fs::rename(p, PathBuf::from(q)).is_err() {
                std::fs::remove_file(p).ok();
            }
        }
    }
    telemetry::counter_add("arena.state.quarantine", 1);
    eprintln!(
        "[arena] warning: quarantined corrupt state {} ({why}); replaying from gen 0",
        state_path.display()
    );
    Ok(ArenaState::default())
}

fn save_state(path: &Path, state: &ArenaState) -> Result<(), ArenaError> {
    let body = serde_json::to_string(state)
        .map_err(|e| ArenaError::Io(format!("serialize arena state: {e}")))?;
    write_checkpoint_file(path, &body).map_err(|e| ArenaError::Io(e.to_string()))
}

/// Render the full trajectory CSV (header + one line per row).
pub fn trajectory_csv(rows: &[GenerationRow]) -> String {
    let mut out = String::from(TRAJECTORY_HEADER);
    out.push('\n');
    for r in rows {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// The benign training corpus: `n` traces alternating the FCC-like and
/// HSDPA-like families, seeded from `base` (offset by `salt` so the
/// training and held-out corpora never share a trace).
fn benign_corpus(n: usize, base: u64, salt: u64) -> Vec<Trace> {
    (0..n)
        .map(|i| {
            let seed = base.wrapping_add(salt).wrapping_add(i as u64);
            if i % 2 == 0 {
                fcc_like(seed, &GenConfig::default())
            } else {
                hsdpa_like(seed, &GenConfig::default())
            }
        })
        .collect()
}

fn new_protocol_trainer(cfg: &ArenaConfig) -> Ppo {
    let ppo_cfg = PpoConfig { seed: cfg.seed, ..cfg.protocol_ppo.clone() };
    Ppo::new_categorical(PENSIEVE_OBS_DIM, 6, &[64, 32], ppo_cfg)
}

/// Evaluate `model` on both held-out fleets, returning the finished row.
fn evaluate_generation(
    cfg: &ArenaConfig,
    model: Pensieve,
    g: u64,
    pool: &TracePool,
) -> GenerationRow {
    let mut fleet_cfg = FleetConfig::new(cfg.fleet_sessions, cfg.fleet_shards);
    fleet_cfg.qoe = cfg.adv_env.qoe.clone();
    let policy = FleetPolicy::batched(model);
    // fixed held-out fleets: seeds are part of the evaluation definition,
    // shared with bench's fleet_eval, so trajectories are comparable
    // across runs and configs
    let benign = run_fleet(
        &fleet_cfg,
        &policy,
        &TraceStream::new(TraceFamily::BenignMix, 9001, GenConfig::default()),
    );
    let adv = run_fleet(
        &fleet_cfg,
        &policy,
        &TraceStream::new(TraceFamily::AdversarialLike, 9002, GenConfig::default()),
    );
    GenerationRow {
        generation: g,
        benign_mean_qoe: benign.mean_qoe,
        benign_p5_qoe: benign.p5_qoe,
        adv_mean_qoe: adv.mean_qoe,
        adv_p5_qoe: adv.p5_qoe,
        pool_size: pool.len() as u64,
        pool_mean_damage: pool.mean_damage(),
        pool_evicted_total: pool.evicted_total,
    }
}

/// Run (or resume) the arena described by `cfg`. See the module docs for
/// the per-generation sequence and the kill+resume contract.
pub fn run_arena(cfg: &ArenaConfig) -> Result<ArenaOutcome, ArenaError> {
    assert!(cfg.heldout_benign > 0, "heldout_benign must be positive");
    assert!(cfg.benign_traces > 0, "benign_traces must be positive");
    assert!(cfg.traces_per_gen > 0, "traces_per_gen must be positive");
    std::fs::create_dir_all(&cfg.dir)
        .map_err(|e| ArenaError::Io(format!("create {}: {e}", cfg.dir.display())))?;
    let state_path = cfg.dir.join("arena.state");
    let pool_path = cfg.dir.join("pool.ckpt");
    let csv_path = cfg.dir.join("trajectory.csv");

    let video = Video::cbr();
    let qoe = cfg.adv_env.qoe.clone();
    let benign = benign_corpus(cfg.benign_traces, cfg.seed, 0);
    let heldout = benign_corpus(cfg.heldout_benign, cfg.seed, 1000);

    let mut state = load_state_or_quarantine(&state_path, &pool_path)?;
    let mut pool = TracePool::load_or_quarantine(&pool_path)?;
    let done = state.rows.len() as u64;

    let mut ppo = new_protocol_trainer(cfg);
    if done > 0 {
        // fast-forward the trainer to the end of the last completed
        // generation's protocol leg
        let ck_path = cfg.dir.join(format!("protocol-gen{}.ckpt", done - 1));
        let tc = load_train_checkpoint(&ck_path)?;
        ppo.restore_train_state(&tc.state)?;
    }

    for g in done..=cfg.generations {
        let _span = telemetry::span!("arena.generation");
        telemetry::counter_add("arena.generations", 1);
        if g == 0 {
            let mut env = AbrTrainEnv::new(benign.clone(), video.clone(), qoe.clone());
            let ck = Checkpointer::new(cfg.dir.join("protocol-gen0.ckpt"), cfg.checkpoint_every);
            ppo.train_checkpointed(&mut env, cfg.initial_steps, &ck)?;
        } else {
            // ---- adversary leg: fresh adversary vs the current protocol
            let target = Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone());
            let mut adv_env =
                AbrAdversaryEnv::new(target.clone(), video.clone(), cfg.adv_env.clone());
            let mut adv_cfg = cfg.adversary.clone();
            adv_cfg.checkpoint_path = Some(cfg.dir.join(format!("adversary-gen{g}.ckpt")));
            adv_cfg.checkpoint_every = cfg.checkpoint_every;
            adv_cfg.ppo.seed = gen_seed(cfg.adversary.ppo.seed, g);
            let (adversary, _) = try_train_abr_adversary(&mut adv_env, &adv_cfg)?;

            // ---- harvest + damage scoring against the current protocol
            let raw = try_generate_abr_traces_with(
                &mut adv_env,
                &adversary.policy,
                adversary.obs_norm.as_ref(),
                cfg.traces_per_gen,
                false,
                gen_seed(cfg.seed, g),
            )?;
            let harvest = try_abr_traces_to_corpus(
                &raw,
                &video,
                cfg.adv_env.latency_ms,
                &format!("arena-gen{g}"),
            )
            .map_err(ArenaError::Trace)?;
            let baseline = nn::ops::mean(&eval_pensieve(&target, &heldout, &video, &qoe));
            let harvest_damage: Vec<f64> = eval_pensieve(&target, &harvest, &video, &qoe)
                .into_iter()
                .map(|q| baseline - q)
                .collect();

            // ---- pool pass: rescore survivors, evict the beaten, insert
            // the harvest, persist. The order matters for resume: evicting
            // *before* inserting means a redone pass cannot evict a trace
            // this generation just added, so the redo lands on identical
            // bytes.
            let stale: Vec<Trace> = pool
                .entries()
                .iter()
                .filter(|e| e.scored_gen < g)
                .map(|e| e.trace.clone())
                .collect();
            let rescored: HashMap<u64, f64> = stale
                .iter()
                .map(Trace::content_hash)
                .zip(eval_pensieve(&target, &stale, &video, &qoe).into_iter().map(|q| baseline - q))
                .collect();
            pool.rescore(g, |t| rescored[&t.content_hash()]);
            let evicted = pool.evict(g, cfg.evict_damage, cfg.evict_patience);
            if !evicted.is_empty() {
                eprintln!(
                    "[arena] gen {g}: evicted {} beaten trace(s): {evicted:?}",
                    evicted.len()
                );
            }
            for (t, d) in harvest.into_iter().zip(harvest_damage) {
                pool.insert(t, d, g);
            }
            pool.try_save(&pool_path)?;

            // ---- protocol leg: benign corpus + damage-weighted pool mix
            let mix = pool.training_mix(cfg.max_pool_mix);
            telemetry::counter_add("arena.pool.hit", mix.len() as u64);
            telemetry::gauge_set("arena.pool.size", pool.len() as f64);
            let mut corpus = benign.clone();
            corpus.extend(mix);
            // start the leg at an episode boundary: drop the in-flight
            // episode continuation so no episode straddles two corpora
            // (see module docs — this is also what keeps a resumed leg's
            // environment snapshot valid)
            let mut st = ppo.to_train_state();
            st.cur_obs = None;
            st.ret_acc = 0.0;
            ppo.restore_train_state(&st)?;
            let mut env = AbrTrainEnv::new(corpus, video.clone(), qoe.clone());
            let ck = Checkpointer::new(
                cfg.dir.join(format!("protocol-gen{g}.ckpt")),
                cfg.checkpoint_every,
            );
            ppo.train_checkpointed(&mut env, cfg.steps_per_gen, &ck)?;
        }

        // ---- held-out fleet evaluation + durable trajectory row
        let model = Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone());
        let row = evaluate_generation(cfg, model, g, &pool);
        eprintln!(
            "[arena] gen {g}: benign p5 {:.3}, adversarial p5 {:.3}, pool {} (mean damage {:.3})",
            row.benign_p5_qoe, row.adv_p5_qoe, row.pool_size, row.pool_mean_damage
        );
        state.rows.push(row);
        save_state(&state_path, &state)?;
        std::fs::write(&csv_path, trajectory_csv(&state.rows))
            .map_err(|e| ArenaError::Io(format!("write {}: {e}", csv_path.display())))?;
    }

    // cover the no-work resume (everything already done): the trajectory
    // file must still reflect the full state
    std::fs::write(&csv_path, trajectory_csv(&state.rows))
        .map_err(|e| ArenaError::Io(format!("write {}: {e}", csv_path.display())))?;
    let model = Pensieve::new(ppo.policy.clone(), ppo.obs_norm.clone());
    Ok(ArenaOutcome { rows: state.rows, pool, model })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_csv_is_deterministic_text() {
        let rows = vec![
            GenerationRow {
                generation: 0,
                benign_mean_qoe: 1.25,
                benign_p5_qoe: 0.5,
                adv_mean_qoe: 0.75,
                adv_p5_qoe: -0.125,
                pool_size: 0,
                pool_mean_damage: 0.0,
                pool_evicted_total: 0,
            },
            GenerationRow {
                generation: 1,
                benign_mean_qoe: 1.3,
                benign_p5_qoe: 0.55,
                adv_mean_qoe: 0.9,
                adv_p5_qoe: 0.1,
                pool_size: 7,
                pool_mean_damage: 0.3333333333333333,
                pool_evicted_total: 2,
            },
        ];
        let csv = trajectory_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), TRAJECTORY_HEADER);
        assert_eq!(lines.next().unwrap(), "0,1.25,0.5,0.75,-0.125,0,0,0");
        assert_eq!(lines.next().unwrap(), "1,1.3,0.55,0.9,0.1,7,0.3333333333333333,2");
        assert_eq!(csv, trajectory_csv(&rows), "pure function of the rows");
    }

    #[test]
    fn state_file_roundtrips_and_quarantines_with_pool() {
        let dir = std::env::temp_dir().join("advnet-arena-state-test");
        std::fs::create_dir_all(&dir).unwrap();
        let state_path = dir.join("arena.state");
        let pool_path = dir.join("pool.ckpt");
        for p in [&state_path, &pool_path] {
            std::fs::remove_file(p).ok();
            let mut q = p.as_os_str().to_owned();
            q.push(".quarantined");
            std::fs::remove_file(PathBuf::from(q)).ok();
        }

        // missing file: fresh state
        assert!(load_state_or_quarantine(&state_path, &pool_path).unwrap().rows.is_empty());

        let state = ArenaState {
            rows: vec![GenerationRow {
                generation: 0,
                benign_mean_qoe: 1.0,
                benign_p5_qoe: 0.25,
                adv_mean_qoe: 0.5,
                adv_p5_qoe: -0.5,
                pool_size: 3,
                pool_mean_damage: 0.125,
                pool_evicted_total: 1,
            }],
        };
        save_state(&state_path, &state).unwrap();
        let back = load_state_or_quarantine(&state_path, &pool_path).unwrap();
        assert_eq!(back.rows, state.rows);

        // corrupt state drags the pool file into quarantine with it
        TracePool::new().try_save(&pool_path).unwrap();
        fault::corrupt_file(&state_path).unwrap();
        let rebuilt = load_state_or_quarantine(&state_path, &pool_path).unwrap();
        assert!(rebuilt.rows.is_empty());
        assert!(!state_path.exists());
        assert!(!pool_path.exists());
        let mut q = pool_path.as_os_str().to_owned();
        q.push(".quarantined");
        assert!(PathBuf::from(q).exists(), "pool quarantined alongside the state");
    }
}
