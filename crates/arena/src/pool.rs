//! The persistent adversarial trace pool.
//!
//! Every generation of the arena harvests traces from a freshly trained
//! adversary; the pool is where they accumulate across generations —
//! deduplicated by [`traces::Trace::content_hash`], scored by **measured
//! damage** (held-out QoE drop vs the benign baseline, re-measured
//! against the current protocol every generation), and evicted once the
//! protocol has stopped losing to them for `patience` consecutive
//! generations. The pool is the arena's long-term memory: an attack
//! discovered in generation 2 keeps pressuring the protocol in
//! generation 9 until it is genuinely defeated, exactly the "maintained
//! corpus of adversarial scenarios" idea from CCLab (PAPERS.md).
//!
//! # Determinism and resume-idempotence
//!
//! The arena's kill+resume contract (resume is bit-identical to an
//! uninterrupted run) leans on three properties of this type:
//!
//! * **Canonical order** — entries are kept sorted by content hash, so
//!   the serialized pool is a pure function of its *set* of entries,
//!   never of insertion order.
//! * **Commutative same-generation merges** — duplicate inserts within
//!   one generation merge damage with `max`, which is order-invariant
//!   (property-tested in `tests/pool_properties.rs`).
//! * **Per-generation guards** — re-scoring ([`TracePool::rescore`])
//!   and the eviction sweep ([`TracePool::evict`]) are keyed by
//!   generation number and skip work already recorded for that
//!   generation, so a resumed process can blindly repeat the whole
//!   per-generation sequence and land on the same bytes.
//!
//! # File format
//!
//! [`TracePool::try_save`] writes the serialized pool through
//! [`rl::ckpt::write_checkpoint_file`]: the `ADVNET-CKPT v1` envelope
//! (FNV-1a 64 checksum + body length header) via an atomic
//! tmp+fsync+rename, so a crash mid-write leaves the previous pool
//! intact and bit rot is detected on load. A corrupt pool file is
//! **quarantined** (renamed to `<file>.quarantined`) and the pool
//! rebuilt empty — the same discipline `bench::pipeline` applies to its
//! cache entries — because the arena can always re-harvest; what it must
//! never do is trust a rotten score table.
//!
//! Fault points (see the `fault` crate): `pool.write` fires *before*
//! the write (`panic@pool.write:2` kills the run mid-generation 2 with
//! the old pool intact; `corrupt@pool.write:1` rots the file after a
//! successful write), `pool.read` fires on load
//! (`corrupt@pool.read:1` makes the first load behave as if the file
//! had rotted).

use rl::ckpt::{read_checkpoint_file, write_checkpoint_file, TrainError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use traces::Trace;

/// One pooled adversarial trace with its damage bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolEntry {
    /// The adversarial trace itself (corpus form, replayable anywhere).
    pub trace: Trace,
    /// [`Trace::content_hash`] — the dedup key and canonical sort key.
    pub hash: u64,
    /// Generation that first added this trace.
    pub born_gen: u64,
    /// Most recent measured damage: held-out benign-baseline QoE minus
    /// QoE on this trace, against the *current* protocol. Positive means
    /// the protocol still loses to it.
    pub damage: f64,
    /// Highest damage ever measured for this trace (how bad the attack
    /// was at its peak — survives re-scoring, useful for reporting).
    pub peak_damage: f64,
    /// Consecutive generations with `damage <= evict threshold`. Reset
    /// to zero whenever the trace draws blood again.
    pub beaten_streak: u64,
    /// Generation of the last damage measurement (insert or re-score).
    pub scored_gen: u64,
}

/// The persistent pool. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePool {
    /// Entries sorted by `hash` ascending (canonical order).
    entries: Vec<PoolEntry>,
    /// Lifetime eviction count (monotone; survives save/load).
    pub evicted_total: u64,
    /// Last generation whose eviction sweep ran (resume guard).
    last_evict_gen: u64,
}

/// Why pool I/O failed.
#[derive(Debug)]
pub enum PoolError {
    /// Filesystem failure reading or writing the pool file.
    Io(String),
    /// The pool file failed checksum/format validation.
    Corrupt(String),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Io(msg) => write!(f, "pool I/O error: {msg}"),
            PoolError::Corrupt(msg) => write!(f, "corrupt pool file: {msg}"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<TrainError> for PoolError {
    fn from(e: TrainError) -> Self {
        match e {
            TrainError::Corrupt(msg) => PoolError::Corrupt(msg),
            other => PoolError::Io(other.to_string()),
        }
    }
}

impl Default for TracePool {
    fn default() -> Self {
        TracePool::new()
    }
}

impl TracePool {
    /// The empty pool.
    pub fn new() -> TracePool {
        TracePool { entries: Vec::new(), evicted_total: 0, last_evict_gen: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the pool has no live entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Live entries in canonical (hash-ascending) order.
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// Mean damage over live entries (0.0 for an empty pool).
    pub fn mean_damage(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.damage).sum::<f64>() / self.entries.len() as f64
    }

    /// Add a harvested trace with its measured damage, deduplicating by
    /// content hash. Returns `true` when the trace is new.
    ///
    /// A duplicate from an earlier generation gets its damage *replaced*
    /// (this generation's measurement supersedes a stale one) and its
    /// `scored_gen` bumped; further duplicates within the same
    /// generation merge with `max`, so the result is independent of the
    /// order the harvest batch arrives in.
    pub fn insert(&mut self, trace: Trace, damage: f64, gen: u64) -> bool {
        let hash = trace.content_hash();
        match self.entries.binary_search_by(|e| e.hash.cmp(&hash)) {
            Ok(i) => {
                let e = &mut self.entries[i];
                e.damage = if e.scored_gen == gen { e.damage.max(damage) } else { damage };
                e.scored_gen = gen;
                e.peak_damage = e.peak_damage.max(e.damage);
                telemetry::counter_add("arena.pool.dedup", 1);
                false
            }
            Err(i) => {
                self.entries.insert(
                    i,
                    PoolEntry {
                        trace,
                        hash,
                        born_gen: gen,
                        damage,
                        peak_damage: damage,
                        beaten_streak: 0,
                        scored_gen: gen,
                    },
                );
                telemetry::counter_add("arena.pool.insert", 1);
                true
            }
        }
    }

    /// Re-measure every entry not yet scored this generation against the
    /// current protocol. Entries already carrying a generation-`gen`
    /// score (inserted or re-scored before a crash) are skipped, which
    /// is what makes a resumed generation repeat to identical bytes.
    pub fn rescore(&mut self, gen: u64, mut scorer: impl FnMut(&Trace) -> f64) {
        for e in &mut self.entries {
            if e.scored_gen < gen {
                e.damage = scorer(&e.trace);
                e.scored_gen = gen;
                e.peak_damage = e.peak_damage.max(e.damage);
            }
        }
    }

    /// Run generation `gen`'s eviction sweep: every entry whose current
    /// damage is at or below `evict_damage` extends its beaten streak
    /// (others reset to zero), and entries beaten for `patience`
    /// consecutive generations are evicted. Returns the evicted traces'
    /// names. Runs at most once per generation (resume guard); the
    /// arena calls it after [`TracePool::rescore`] and *before*
    /// inserting the new harvest, so a trace gets at least one full
    /// generation of protocol training against it before it can be
    /// judged defeated.
    pub fn evict(&mut self, gen: u64, evict_damage: f64, patience: u64) -> Vec<String> {
        if self.last_evict_gen >= gen {
            return Vec::new();
        }
        self.last_evict_gen = gen;
        let patience = patience.max(1);
        for e in &mut self.entries {
            if e.damage <= evict_damage {
                e.beaten_streak += 1;
            } else {
                e.beaten_streak = 0;
            }
        }
        let mut evicted = Vec::new();
        self.entries.retain(|e| {
            if e.beaten_streak >= patience {
                evicted.push(e.trace.name.clone());
                false
            } else {
                true
            }
        });
        if !evicted.is_empty() {
            self.evicted_total += evicted.len() as u64;
            telemetry::counter_add("arena.pool.evict", evicted.len() as u64);
        }
        evicted
    }

    /// The damage-weighted training mix: up to `max_traces` live traces,
    /// strongest attacks first, each duplicated 1–3× in proportion to
    /// its damage relative to the pool's current worst (so protocol
    /// training spends more episodes on the traces that still hurt
    /// most). Entries that no longer draw blood (`damage <= 0`)
    /// contribute nothing. Deterministic: ties in damage break by
    /// content hash.
    pub fn training_mix(&self, max_traces: usize) -> Vec<Trace> {
        let mut live: Vec<&PoolEntry> = self.entries.iter().filter(|e| e.damage > 0.0).collect();
        live.sort_by(|a, b| {
            b.damage
                .partial_cmp(&a.damage)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.hash.cmp(&b.hash))
        });
        live.truncate(max_traces);
        let max_damage = live.first().map(|e| e.damage).unwrap_or(0.0);
        let mut mix = Vec::new();
        for e in live {
            let copies = if max_damage > 0.0 {
                1 + (2.0 * e.damage / max_damage).floor().min(2.0) as usize
            } else {
                1
            };
            for _ in 0..copies {
                mix.push(e.trace.clone());
            }
        }
        mix
    }

    /// Serialize and atomically write the pool (`ADVNET-CKPT` envelope:
    /// checksummed, tmp+fsync+rename).
    ///
    /// Registers the `pool.write` fault point: `panic@pool.write:<n>`
    /// crashes before the nth write (the previous pool file survives),
    /// `corrupt@pool.write:<n>` bit-flips the freshly written file —
    /// which [`TracePool::load_or_quarantine`] must then reject and
    /// quarantine.
    pub fn try_save(&self, path: &Path) -> Result<(), PoolError> {
        let injection = fault::check("pool.write");
        let body = serde_json::to_string(self)
            .map_err(|e| PoolError::Io(format!("serialize pool: {e}")))?;
        write_checkpoint_file(path, &body)?;
        if injection == Some(fault::Injection::Corrupt) {
            fault::corrupt_file(path).map_err(|e| {
                PoolError::Io(format!("corrupt injection on {}: {e}", path.display()))
            })?;
        }
        Ok(())
    }

    /// Read and validate a pool file. `Ok(None)` when the file does not
    /// exist (a fresh arena); [`PoolError::Corrupt`] when it exists but
    /// fails checksum/format validation.
    ///
    /// Registers the `pool.read` fault point (`corrupt@pool.read:<n>`
    /// makes the nth load behave as if the file had rotted,
    /// `panic@pool.read:<n>` crashes it).
    pub fn try_load(path: &Path) -> Result<Option<TracePool>, PoolError> {
        if !path.exists() {
            return Ok(None);
        }
        if fault::check("pool.read") == Some(fault::Injection::Corrupt) {
            return Err(PoolError::Corrupt(format!(
                "{}: fault-plan injected pool read corruption",
                path.display()
            )));
        }
        let body = read_checkpoint_file(path).map_err(PoolError::from)?;
        let pool: TracePool = serde_json::from_str(&body).map_err(|e| {
            PoolError::Corrupt(format!("{}: invalid pool body: {e}", path.display()))
        })?;
        Ok(Some(pool))
    }

    /// [`TracePool::try_load`], but a corrupt file is moved aside to
    /// `<file>.quarantined` and an empty pool returned so the arena can
    /// rebuild — the `bench::pipeline` cache-quarantine pattern. Only
    /// genuine I/O failures (permissions, disappearing directories)
    /// still error.
    pub fn load_or_quarantine(path: &Path) -> Result<TracePool, PoolError> {
        match TracePool::try_load(path) {
            Ok(Some(pool)) => Ok(pool),
            Ok(None) => Ok(TracePool::new()),
            Err(PoolError::Corrupt(why)) => {
                let mut qpath = path.as_os_str().to_owned();
                qpath.push(".quarantined");
                let qpath = std::path::PathBuf::from(qpath);
                if std::fs::rename(path, &qpath).is_err() {
                    std::fs::remove_file(path).ok();
                }
                telemetry::counter_add("arena.pool.quarantine", 1);
                eprintln!(
                    "[arena] warning: quarantined corrupt pool file {} ({why}); rebuilding empty",
                    path.display()
                );
                Ok(TracePool::new())
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use traces::Segment;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("advnet-arena-pool-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trace(tag: u64, bw: f64) -> Trace {
        Trace::new(
            format!("t-{tag}"),
            vec![Segment::bw(4.0, bw, 80.0), Segment::bw(4.0, bw + 0.25, 80.0)],
        )
    }

    #[test]
    fn insert_dedups_by_content_not_name() {
        let mut pool = TracePool::new();
        assert!(pool.insert(trace(0, 1.0), 0.5, 1));
        // same segments, different name: a duplicate
        let mut same = trace(0, 1.0);
        same.name = "renamed".into();
        assert!(!pool.insert(same, 0.7, 1));
        assert_eq!(pool.len(), 1);
        // same-generation merge keeps the max damage
        assert_eq!(pool.entries()[0].damage, 0.7);
        assert_eq!(pool.entries()[0].peak_damage, 0.7);
        // a later generation's measurement replaces, not maxes
        assert!(!pool.insert(trace(0, 1.0), 0.2, 2));
        assert_eq!(pool.entries()[0].damage, 0.2);
        assert_eq!(pool.entries()[0].peak_damage, 0.7, "peak survives re-measurement");
        assert_eq!(pool.entries()[0].born_gen, 1);
    }

    #[test]
    fn entries_stay_in_canonical_hash_order() {
        let mut pool = TracePool::new();
        for (i, bw) in [3.0, 1.0, 2.5, 0.9].iter().enumerate() {
            pool.insert(trace(i as u64, *bw), 0.1, 1);
        }
        let hashes: Vec<u64> = pool.entries().iter().map(|e| e.hash).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        assert_eq!(hashes, sorted);
    }

    #[test]
    fn rescore_skips_entries_already_scored_this_generation() {
        let mut pool = TracePool::new();
        pool.insert(trace(0, 1.0), 0.5, 1);
        pool.insert(trace(1, 2.0), 0.8, 2);
        let mut scored = Vec::new();
        pool.rescore(2, |t| {
            scored.push(t.name.clone());
            0.1
        });
        assert_eq!(scored, vec!["t-0"], "gen-2 entry must not be re-scored in gen 2");
        assert_eq!(pool.entries()[0].damage.max(pool.entries()[1].damage), 0.8);
        // repeating the same generation's rescore is a no-op
        pool.rescore(2, |_| panic!("everything already scored"));
    }

    #[test]
    fn eviction_needs_patience_and_runs_once_per_generation() {
        let mut pool = TracePool::new();
        pool.insert(trace(0, 1.0), 0.9, 1); // still biting
        let beaten = trace(1, 2.0);
        pool.insert(beaten, 0.01, 1);
        // patience 2: first beaten generation only builds streak
        assert!(pool.evict(2, 0.05, 2).is_empty());
        // same generation again: guarded no-op, streaks unchanged
        assert!(pool.evict(2, 0.05, 2).is_empty());
        assert_eq!(pool.len(), 2);
        // second consecutive beaten generation: evicted
        let evicted = pool.evict(3, 0.05, 2);
        assert_eq!(evicted, vec!["t-1".to_string()]);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.evicted_total, 1);
        // drawing blood resets the streak
        let mut pool2 = TracePool::new();
        pool2.insert(trace(0, 1.0), 0.01, 1);
        pool2.evict(2, 0.05, 2);
        pool2.entries.iter_mut().for_each(|e| e.damage = 0.9);
        pool2.evict(3, 0.05, 2); // streak resets here
        pool2.entries.iter_mut().for_each(|e| e.damage = 0.01);
        assert!(pool2.evict(4, 0.05, 2).is_empty(), "streak restarted from zero");
        assert_eq!(pool2.len(), 1);
    }

    #[test]
    fn training_mix_weights_by_damage_and_is_deterministic() {
        let mut pool = TracePool::new();
        pool.insert(trace(0, 1.0), 1.0, 1); // worst attack: 3 copies
        pool.insert(trace(1, 2.0), 0.5, 1); // half as bad: 2 copies
        pool.insert(trace(2, 3.0), 0.1, 1); // mild: 1 copy
        pool.insert(trace(3, 4.0), -0.2, 1); // protocol wins: excluded
        let mix = pool.training_mix(8);
        assert_eq!(mix.len(), 3 + 2 + 1);
        assert_eq!(mix[0].name, "t-0");
        let mix2 = pool.training_mix(8);
        assert_eq!(mix, mix2);
        // the cap limits distinct traces, strongest first
        let capped = pool.training_mix(1);
        assert!(capped.iter().all(|t| t.name == "t-0"));
        assert!(pool.training_mix(0).is_empty());
    }

    #[test]
    fn save_load_roundtrip_is_byte_identical() {
        let path = tmp("roundtrip.pool");
        std::fs::remove_file(&path).ok();
        let mut pool = TracePool::new();
        pool.insert(trace(0, 1.37), 0.123456789, 1);
        pool.insert(trace(1, 2.81), -0.5, 2);
        pool.evict(3, 0.0, 1);
        pool.try_save(&path).unwrap();
        let bytes1 = std::fs::read(&path).unwrap();
        let back = TracePool::try_load(&path).unwrap().expect("file exists");
        assert_eq!(back, pool);
        back.try_save(&path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes1, "load∘save is the identity on bytes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_loads_as_fresh_pool() {
        let path = tmp("never-written.pool");
        assert!(TracePool::try_load(&path).unwrap().is_none());
        assert!(TracePool::load_or_quarantine(&path).unwrap().is_empty());
    }

    #[test]
    fn corrupt_pool_is_quarantined_and_rebuilt() {
        let path = tmp("corrupt.pool");
        std::fs::remove_file(&path).ok();
        let qpath = tmp("corrupt.pool.quarantined");
        std::fs::remove_file(&qpath).ok();
        let mut pool = TracePool::new();
        pool.insert(trace(0, 1.0), 0.4, 1);
        pool.try_save(&path).unwrap();
        fault::corrupt_file(&path).unwrap();
        assert!(matches!(TracePool::try_load(&path), Err(PoolError::Corrupt(_))));
        let rebuilt = TracePool::load_or_quarantine(&path).unwrap();
        assert!(rebuilt.is_empty());
        assert!(qpath.exists(), "rotten file moved aside for post-mortem");
        assert!(!path.exists());
        std::fs::remove_file(&qpath).ok();
    }
}
