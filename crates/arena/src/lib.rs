//! Generational self-play robustification.
//!
//! The paper robustifies a protocol *once*: train it, train one adversary
//! against it, inject that adversary's traces, resume training (§2.3).
//! This crate closes the loop and keeps it running — the roadmap's
//! "adversarial training at scale, continuously": an **arena** where a
//! fresh adversary is trained against every new protocol checkpoint and
//! the protocol keeps training against everything any adversary has ever
//! found that still hurts it.
//!
//! * [`pool`] — the persistent adversarial trace pool: content-hash
//!   deduplicated, scored by measured damage against the *current*
//!   protocol, evicted once the protocol has stopped losing, persisted in
//!   the workspace's checksummed atomic checkpoint envelope.
//! * [`engine`] — the generational loop itself: adversary leg → harvest
//!   and damage scoring → pool pass → protocol leg → held-out fleet
//!   evaluation ([`serve::run_fleet`]), one trajectory row per
//!   generation, kill+resumable at any point with a bit-identical result.
//!
//! Run it from the bench crate: `cargo run --release -p adv-bench --bin
//! arena_run` (knobs via `ARENA_*` environment variables). Fault points
//! `pool.write` / `pool.read` make the pool's crash and corruption paths
//! testable with `ADVNET_FAULT_PLAN`; telemetry emits `arena.generation`
//! spans and `arena.pool.*` counters. See DESIGN.md §14.

#![warn(missing_docs)]

pub mod engine;
pub mod pool;

pub use engine::{
    run_arena, trajectory_csv, ArenaConfig, ArenaError, ArenaOutcome, GenerationRow,
    TRAJECTORY_HEADER,
};
pub use pool::{PoolEntry, PoolError, TracePool};
