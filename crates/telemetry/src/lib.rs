//! Process-wide observability for the adversarial-networking stack:
//! counters, gauges, log2-bucketed histograms, nesting span timers, a
//! JSONL event sink, and an atomic, checksummed **run manifest**
//! (`results/runs/<run-id>.json`).
//!
//! Design constraints (see DESIGN.md §12):
//!
//! * **Zero dependencies.** This crate sits below `fault` and `nn` in the
//!   workspace graph, so it uses `std` only and hand-writes its JSON.
//! * **Deterministic-safe.** Wall-clock time is *observational only*: no
//!   recorded value is ever read back into simulation or training, so
//!   `ADVNET_TELEMETRY=on` cannot change a `TrainState` bit or a result
//!   CSV byte (regression-tested in `tests/telemetry_equivalence.rs`).
//! * **Near-zero cost when off.** Every recording entry point starts with
//!   a single relaxed atomic load ([`enabled`]) and returns immediately
//!   when telemetry is disabled; `Instant::now()` is never called while
//!   disabled.
//!
//! Enable with `ADVNET_TELEMETRY=on` (or `1`/`true`). Optionally set
//! `ADVNET_RUN_ID` to name the manifest and `ADVNET_TELEMETRY_EVENTS` to
//! a file path to stream span/guard events as JSON lines.
//!
//! Metric names are dot-separated and prefixed by the owning crate
//! (`rl.`, `exec.`, `bench.`, `fault.`, `nn.`); span names are prefixed
//! by phase group (`train.`, `exec.`, `sim.`, `bench.`) — the
//! `telemetry-report` binary aggregates regressions per phase group.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable that switches telemetry on (`on`/`1`/`true`).
pub const ENV_ENABLED: &str = "ADVNET_TELEMETRY";
/// Environment variable naming the run (manifest file stem); defaults to
/// `<unix-seconds>-<pid>` when unset.
pub const ENV_RUN_ID: &str = "ADVNET_RUN_ID";
/// Environment variable pointing the JSONL event sink at a file path.
pub const ENV_EVENTS: &str = "ADVNET_TELEMETRY_EVENTS";
/// Schema tag embedded in every run manifest.
pub const MANIFEST_SCHEMA: &str = "advnet-telemetry-v1";

// 0 = uninitialised, 1 = off, 2 = on
static ENABLED: AtomicU8 = AtomicU8::new(0);
// 0 = uninitialised, 1 = no sink, 2 = sink active
static SINK_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is recording. The steady-state cost is one relaxed
/// atomic load; the first call reads [`ENV_ENABLED`] once.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

/// Read [`ENV_ENABLED`] and latch the on/off state; returns the result.
/// Calling it again re-reads the environment (used by tests and by
/// binaries that want an explicit arm point).
pub fn init_from_env() -> bool {
    let on = matches!(std::env::var(ENV_ENABLED).as_deref(), Ok("on") | Ok("1") | Ok("true"));
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically switch telemetry on or off (tests, equivalence
/// harnesses). Overrides whatever the environment said.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

/// Aggregate statistics of one log2-bucketed histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observed value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    /// Observations that were zero, negative or non-finite (no log2 bucket).
    pub zero_or_neg: u64,
    /// `floor(log2(v))` bucket → count, for positive finite observations.
    pub buckets: BTreeMap<i32, u64>,
}

impl HistStat {
    fn new() -> Self {
        HistStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            zero_or_neg: 0,
            buckets: BTreeMap::new(),
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if v.is_finite() && v > 0.0 {
            let b = (v.log2().floor() as i32).clamp(-128, 128);
            *self.buckets.entry(b).or_insert(0) += 1;
        } else {
            self.zero_or_neg += 1;
        }
    }
}

/// Aggregate statistics of one named span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Number of completed spans under this name.
    pub count: u64,
    /// Total wall time across them, seconds.
    pub total_s: f64,
    /// Shortest single span, seconds.
    pub min_s: f64,
    /// Longest single span, seconds.
    pub max_s: f64,
}

impl SpanStat {
    fn new() -> Self {
        SpanStat { count: 0, total_s: 0.0, min_s: f64::INFINITY, max_s: f64::NEG_INFINITY }
    }

    fn record(&mut self, secs: f64) {
        self.count += 1;
        self.total_s += secs;
        if secs < self.min_s {
            self.min_s = secs;
        }
        if secs > self.max_s {
            self.max_s = secs;
        }
    }
}

#[derive(Debug)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, HistStat>,
    spans: BTreeMap<String, SpanStat>,
}

impl Registry {
    const fn new() -> Self {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            spans: BTreeMap::new(),
        }
    }
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry::new());

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    // a worker that panicked (e.g. under fault injection) never holds this
    // lock across the panic — recording functions are self-contained — so a
    // poisoned lock still guards consistent data
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Add `n` to the named monotonic counter. No-op when disabled.
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry();
    match reg.counters.get_mut(name) {
        Some(c) => *c += n,
        None => {
            reg.counters.insert(name.to_string(), n);
        }
    }
}

/// Current value of a counter (0 when absent). Mostly for tests and CI
/// assertions; always readable even when recording is disabled.
pub fn counter_get(name: &str) -> u64 {
    registry().counters.get(name).copied().unwrap_or(0)
}

/// Set the named gauge to `v` (last write wins). No-op when disabled.
pub fn gauge_set(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    registry().gauges.insert(name.to_string(), v);
}

/// Record one observation into the named log2-bucketed histogram.
/// No-op when disabled.
pub fn observe(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    let mut reg = registry();
    match reg.hists.get_mut(name) {
        Some(h) => h.observe(v),
        None => {
            let mut h = HistStat::new();
            h.observe(v);
            reg.hists.insert(name.to_string(), h);
        }
    }
}

/// Record a completed span of `secs` seconds under `name` at nesting
/// `depth` (1 = outermost). Usually called by [`Span`]'s `Drop`, not
/// directly. No-op when disabled.
pub fn record_span(name: &str, secs: f64, depth: u32) {
    if !enabled() {
        return;
    }
    {
        let mut reg = registry();
        match reg.spans.get_mut(name) {
            Some(s) => s.record(secs),
            None => {
                let mut s = SpanStat::new();
                s.record(secs);
                reg.spans.insert(name.to_string(), s);
            }
        }
    }
    if SINK_STATE.load(Ordering::Relaxed) == 2 {
        sink_line(&format!(
            "{{\"ev\":\"span\",\"name\":{},\"wall_s\":{},\"depth\":{}}}",
            json_str(name),
            json_f64(secs),
            depth
        ));
    }
}

/// Drain every metric and forget the event-sink binding. Tests only: real
/// runs accumulate for the whole process and flush via [`write_manifest`].
pub fn reset() {
    let mut reg = registry();
    reg.counters.clear();
    reg.gauges.clear();
    reg.hists.clear();
    reg.spans.clear();
    SINK_STATE.store(0, Ordering::Relaxed);
    *sink().lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Point-in-time copy of the whole registry, with every map in
/// deterministic (lexicographic) key order.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Log2-bucketed histograms.
    pub hists: BTreeMap<String, HistStat>,
    /// Span timing aggregates.
    pub spans: BTreeMap<String, SpanStat>,
}

/// Copy the current registry contents.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    Snapshot {
        counters: reg.counters.clone(),
        gauges: reg.gauges.clone(),
        hists: reg.hists.clone(),
        spans: reg.spans.clone(),
    }
}

// ---------------------------------------------------------------------------
// spans
// ---------------------------------------------------------------------------

thread_local! {
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII wall-clock timer for one named region; records into the span
/// registry (and the JSONL sink, when bound) on drop. Create via
/// [`span!`]. When telemetry is disabled the constructor returns an inert
/// guard without reading the clock.
#[must_use = "a span records on drop; binding it to _ discards the timing immediately"]
pub struct Span {
    inner: Option<(&'static str, Instant)>,
}

impl Span {
    /// Start timing `name` (no-op guard when telemetry is disabled).
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span { inner: None };
        }
        DEPTH.with(|d| d.set(d.get() + 1));
        Span { inner: Some((name, Instant::now())) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, t0)) = self.inner.take() {
            let secs = t0.elapsed().as_secs_f64();
            let depth = DEPTH.with(|d| {
                let v = d.get();
                d.set(v.saturating_sub(1));
                v
            });
            record_span(name, secs, depth);
        }
    }
}

/// Time the enclosing scope: `let _t = telemetry::span!("train.update");`
/// Spans nest — an inner span started while an outer one is live records
/// at depth + 1 in the event sink.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
}

// ---------------------------------------------------------------------------
// JSONL event sink
// ---------------------------------------------------------------------------

fn sink() -> &'static Mutex<Option<std::io::BufWriter<std::fs::File>>> {
    static SINK: Mutex<Option<std::io::BufWriter<std::fs::File>>> = Mutex::new(None);
    &SINK
}

fn sink_active() -> bool {
    match SINK_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let state = match std::env::var(ENV_EVENTS) {
                Ok(path) if !path.is_empty() => match std::fs::File::create(&path) {
                    Ok(f) => {
                        *sink().lock().unwrap_or_else(|e| e.into_inner()) =
                            Some(std::io::BufWriter::new(f));
                        2
                    }
                    Err(_) => 1,
                },
                _ => 1,
            };
            SINK_STATE.store(state, Ordering::Relaxed);
            state == 2
        }
    }
}

fn sink_line(line: &str) {
    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = guard.as_mut() {
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Emit a structured event line `{"ev":name,"detail":detail}` to the
/// JSONL sink (when `ADVNET_TELEMETRY_EVENTS` is bound) and bump the
/// `event.<name>` counter. This replaces ad-hoc stderr warnings so stderr
/// stays reserved for fatal errors. No-op when disabled.
pub fn event(name: &str, detail: &str) {
    if !enabled() {
        return;
    }
    counter_add(&format!("event.{name}"), 1);
    if sink_active() {
        sink_line(&format!("{{\"ev\":{},\"detail\":{}}}", json_str(name), json_str(detail)));
    }
}

// ---------------------------------------------------------------------------
// provenance
// ---------------------------------------------------------------------------

/// Where a run happened: enough to attribute benchmark numbers to a host
/// and a commit. All fields are best-effort (`"unknown"` on failure) and
/// purely observational.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Git commit hash (`GITHUB_SHA`, else `git rev-parse HEAD`).
    pub commit: String,
    /// Host name (`HOSTNAME`, else `/etc/hostname`).
    pub hostname: String,
    /// `std::thread::available_parallelism()`.
    pub cores: usize,
    /// `rustc --version` of the toolchain on PATH.
    pub rustc: String,
    /// `<os>-<arch>` of the build target.
    pub os: String,
}

fn cmd_line(program: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(program).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

/// Collect [`Provenance`] for the current process (spawns `git`/`rustc`;
/// call once per run, at manifest-write time).
pub fn provenance() -> Provenance {
    let commit = std::env::var("GITHUB_SHA")
        .ok()
        .filter(|s| !s.is_empty())
        .or_else(|| cmd_line("git", &["rev-parse", "HEAD"]))
        .unwrap_or_else(|| "unknown".to_string());
    let hostname = std::env::var("HOSTNAME")
        .ok()
        .filter(|s| !s.is_empty())
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let rustc = cmd_line("rustc", &["--version"]).unwrap_or_else(|| "unknown".to_string());
    Provenance {
        commit,
        hostname,
        cores,
        rustc,
        os: format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH),
    }
}

// ---------------------------------------------------------------------------
// run manifest
// ---------------------------------------------------------------------------

/// Identity and configuration of one run, stamped into the manifest.
#[derive(Debug, Clone, Default)]
pub struct RunMeta {
    /// File stem of the manifest (`results/runs/<run_id>.json`).
    pub run_id: String,
    /// Seed driving the run, when one exists.
    pub seed: Option<u64>,
    /// Free-form `key = value` configuration pairs (sorted on render).
    pub config: Vec<(String, String)>,
}

/// The run id: `ADVNET_RUN_ID` if set, else `<unix-seconds>-<pid>`.
/// Wall-clock here is observational (a file name), never simulation input.
pub fn run_id_from_env() -> String {
    if let Ok(id) = std::env::var(ENV_RUN_ID) {
        if !id.is_empty() {
            return sanitize_id(&id);
        }
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!("{secs}-{}", std::process::id())
}

fn sanitize_id(id: &str) -> String {
    id.chars()
        .map(
            |c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' { c } else { '-' },
        )
        .collect()
}

/// FNV-1a 64-bit hash — same function as `rl::ckpt` uses for checkpoint
/// envelopes (duplicated here because telemetry sits below `rl`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}") // shortest round-trip form, matches the serde_json stub
    } else {
        "null".to_string() // JSON has no NaN/Inf
    }
}

/// Render the manifest *body* (the part the checksum covers) from an
/// explicit snapshot and provenance. Key order is fully deterministic:
/// every map is a `BTreeMap` and `config` is sorted by key. Exposed so
/// tests can prove byte-identical rendering across insertion orders.
pub fn render_body(meta: &RunMeta, prov: &Provenance, snap: &Snapshot) -> String {
    let mut cfg: Vec<(String, String)> = meta.config.clone();
    cfg.sort();
    let mut b = String::with_capacity(4096);
    b.push_str("{\"schema\":");
    b.push_str(&json_str(MANIFEST_SCHEMA));
    b.push_str(",\"run_id\":");
    b.push_str(&json_str(&meta.run_id));
    b.push_str(",\"seed\":");
    match meta.seed {
        Some(s) => b.push_str(&s.to_string()),
        None => b.push_str("null"),
    }
    b.push_str(",\"config\":{");
    for (i, (k, v)) in cfg.iter().enumerate() {
        if i > 0 {
            b.push(',');
        }
        b.push_str(&json_str(k));
        b.push(':');
        b.push_str(&json_str(v));
    }
    b.push_str("},\"provenance\":{\"commit\":");
    b.push_str(&json_str(&prov.commit));
    b.push_str(",\"hostname\":");
    b.push_str(&json_str(&prov.hostname));
    b.push_str(",\"cores\":");
    b.push_str(&prov.cores.to_string());
    b.push_str(",\"rustc\":");
    b.push_str(&json_str(&prov.rustc));
    b.push_str(",\"os\":");
    b.push_str(&json_str(&prov.os));
    b.push_str("},\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            b.push(',');
        }
        b.push_str(&json_str(k));
        b.push(':');
        b.push_str(&v.to_string());
    }
    b.push_str("},\"gauges\":{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            b.push(',');
        }
        b.push_str(&json_str(k));
        b.push(':');
        b.push_str(&json_f64(*v));
    }
    b.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            b.push(',');
        }
        b.push_str(&json_str(k));
        b.push_str(":{\"count\":");
        b.push_str(&h.count.to_string());
        b.push_str(",\"sum\":");
        b.push_str(&json_f64(h.sum));
        b.push_str(",\"min\":");
        b.push_str(&json_f64(h.min));
        b.push_str(",\"max\":");
        b.push_str(&json_f64(h.max));
        b.push_str(",\"zero_or_neg\":");
        b.push_str(&h.zero_or_neg.to_string());
        b.push_str(",\"buckets\":{");
        for (j, (bi, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                b.push(',');
            }
            b.push_str(&json_str(&bi.to_string()));
            b.push(':');
            b.push_str(&c.to_string());
        }
        b.push_str("}}");
    }
    b.push_str("},\"spans\":{");
    for (i, (k, s)) in snap.spans.iter().enumerate() {
        if i > 0 {
            b.push(',');
        }
        b.push_str(&json_str(k));
        b.push_str(":{\"count\":");
        b.push_str(&s.count.to_string());
        b.push_str(",\"total_s\":");
        b.push_str(&json_f64(s.total_s));
        b.push_str(",\"min_s\":");
        b.push_str(&json_f64(s.min_s));
        b.push_str(",\"max_s\":");
        b.push_str(&json_f64(s.max_s));
        b.push('}');
    }
    b.push_str("}}");
    b
}

/// Wrap a rendered body in the checksum envelope. The file stays a single
/// valid JSON document: `{"fnv1a":"<16 hex>","manifest":<body>}` where
/// the hash covers exactly the `<body>` bytes.
pub fn seal_body(body: &str) -> String {
    format!("{{\"fnv1a\":\"{:016x}\",\"manifest\":{body}}}", fnv1a64(body.as_bytes()))
}

/// Verify a sealed manifest and return the inner body string, or a
/// description of why it is invalid (truncation, bit rot, wrong format).
pub fn manifest_body(text: &str) -> Result<&str, String> {
    const PREFIX: &str = "{\"fnv1a\":\"";
    const MID: &str = "\",\"manifest\":";
    let rest = text
        .strip_prefix(PREFIX)
        .ok_or_else(|| "not a sealed telemetry manifest (missing fnv1a envelope)".to_string())?;
    if rest.len() < 16 + MID.len() + 1 {
        return Err("manifest truncated".to_string());
    }
    let (hex, rest) = rest.split_at(16);
    let want = u64::from_str_radix(hex, 16).map_err(|_| "malformed checksum".to_string())?;
    let body_and_close =
        rest.strip_prefix(MID).ok_or_else(|| "malformed envelope after checksum".to_string())?;
    let body = body_and_close
        .strip_suffix('}')
        .ok_or_else(|| "manifest missing closing brace".to_string())?;
    let got = fnv1a64(body.as_bytes());
    if got != want {
        return Err(format!("checksum mismatch: header {want:016x}, body hashes to {got:016x}"));
    }
    Ok(body)
}

/// Atomically write the sealed manifest for the current registry state to
/// `<dir>/<run_id>.json` (tmp file + fsync + rename, the `rl::ckpt`
/// discipline) and return the final path.
pub fn write_manifest(dir: &Path, meta: &RunMeta) -> std::io::Result<PathBuf> {
    let body = render_body(meta, &provenance(), &snapshot());
    let sealed = seal_body(&body);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", sanitize_id(&meta.run_id)));
    let tmp = dir.join(format!(".{}.json.tmp-{}", sanitize_id(&meta.run_id), std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(sealed.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    // flush any pending event lines alongside the manifest
    sink_line("");
    Ok(path)
}

/// [`write_manifest`] into `$RESULTS_DIR/runs` (default `results/runs`),
/// with the run id from [`run_id_from_env`]. The standard exit hook for
/// binaries; returns `Ok(None)` without touching the filesystem when
/// telemetry is disabled.
pub fn write_manifest_default(
    seed: Option<u64>,
    config: &[(String, String)],
) -> std::io::Result<Option<PathBuf>> {
    if !enabled() {
        return Ok(None);
    }
    let base = std::env::var("RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let dir = Path::new(&base).join("runs");
    let meta = RunMeta { run_id: run_id_from_env(), seed, config: config.to_vec() };
    write_manifest(&dir, &meta).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    // the registry and enabled flag are process globals: serialize tests
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        counter_add("x", 3);
        observe("h", 1.0);
        gauge_set("g", 2.0);
        let _s = span!("s");
        drop(_s);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_histograms_and_spans_accumulate() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter_add("a.b", 2);
        counter_add("a.b", 3);
        observe("h", 0.5);
        observe("h", 3.0);
        observe("h", 0.0);
        {
            let _s = span!("t.x");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = snapshot();
        assert_eq!(snap.counters["a.b"], 5);
        let h = &snap.hists["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.zero_or_neg, 1);
        assert_eq!(h.buckets[&-1], 1); // 0.5 → bucket -1
        assert_eq!(h.buckets[&1], 1); // 3.0 → bucket 1
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 3.0);
        let s = &snap.spans["t.x"];
        assert_eq!(s.count, 1);
        assert!(s.total_s > 0.0);
        set_enabled(false);
        reset();
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // same vectors rl::ckpt verifies against
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn seal_and_verify_round_trip() {
        let body = r#"{"schema":"advnet-telemetry-v1","x":1}"#;
        let sealed = seal_body(body);
        assert_eq!(manifest_body(&sealed).unwrap(), body);
        // flip one byte in the body → rejected
        let corrupted = sealed.replace("\"x\":1", "\"x\":2");
        assert!(manifest_body(&corrupted).unwrap_err().contains("checksum mismatch"));
        assert!(manifest_body("{\"other\":1}").is_err());
    }

    #[test]
    fn render_is_deterministic_across_insertion_orders() {
        let _g = lock();
        let prov = Provenance {
            commit: "c".into(),
            hostname: "h".into(),
            cores: 4,
            rustc: "r".into(),
            os: "o".into(),
        };
        let meta = RunMeta {
            run_id: "t".into(),
            seed: Some(7),
            config: vec![("b".into(), "2".into()), ("a".into(), "1".into())],
        };
        set_enabled(true);
        reset();
        counter_add("z", 1);
        counter_add("a", 2);
        observe("m", 1.5);
        let s1 = render_body(&meta, &prov, &snapshot());
        reset();
        counter_add("a", 2);
        observe("m", 1.5);
        counter_add("z", 1);
        let s2 = render_body(&meta, &prov, &snapshot());
        assert_eq!(s1, s2);
        assert!(s1.contains("\"seed\":7"));
        assert!(s1.contains("\"config\":{\"a\":\"1\",\"b\":\"2\"}"));
        set_enabled(false);
        reset();
    }

    #[test]
    fn manifest_file_write_and_verify() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter_add("k", 9);
        let dir =
            std::env::temp_dir().join(format!("advnet-telemetry-test-{}", std::process::id()));
        let meta = RunMeta { run_id: "unit/../test".into(), seed: None, config: vec![] };
        let path = write_manifest(&dir, &meta).unwrap();
        // run id is sanitized into a flat file name
        assert_eq!(path.parent().unwrap(), dir.as_path());
        let text = std::fs::read_to_string(&path).unwrap();
        let body = manifest_body(text.trim_end()).unwrap();
        assert!(body.contains("\"k\":9"));
        assert!(body.contains(MANIFEST_SCHEMA));
        std::fs::remove_dir_all(&dir).ok();
        set_enabled(false);
        reset();
    }

    #[test]
    fn json_escaping_and_floats() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
