//! Concurrency properties of the telemetry registry: N threads hammering
//! counters and histograms must lose nothing (exact totals — counters are
//! integers and integer-valued f64 sums are associative, so thread
//! interleaving cannot perturb a single bit), and rendering a snapshot
//! must not depend on the order metrics were first touched.

use proptest::prelude::*;
use std::sync::Barrier;

/// Process-global registry ⇒ serialize every test case.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Totals are exact under contention: `threads × per_thread × delta`
    /// for the counter, `threads × per_thread` observations with an exact
    /// integer sum for the histogram.
    #[test]
    fn hammered_counters_and_histograms_are_exact(
        threads in 1_usize..6,
        per_thread in 1_usize..300,
        delta in 1_u64..9,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        telemetry::set_enabled(true);
        telemetry::reset();

        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    barrier.wait();
                    for _ in 0..per_thread {
                        telemetry::counter_add("prop.counter", delta);
                        telemetry::observe("prop.hist", delta as f64);
                    }
                });
            }
        });

        let snap = telemetry::snapshot();
        let n = (threads * per_thread) as u64;
        prop_assert_eq!(snap.counters["prop.counter"], n * delta);
        let h = &snap.hists["prop.hist"];
        prop_assert_eq!(h.count, n);
        // integer-valued f64 additions are exact and order-independent
        prop_assert_eq!(h.sum, (n * delta) as f64);
        prop_assert_eq!(h.min, delta as f64);
        prop_assert_eq!(h.max, delta as f64);
        let bucket = (delta as f64).log2().floor() as i32;
        prop_assert_eq!(h.buckets[&bucket], n);

        telemetry::set_enabled(false);
        telemetry::reset();
    }

    /// The manifest body is byte-identical no matter which order (or from
    /// how many threads) the same metrics were first created.
    #[test]
    fn manifest_render_order_is_deterministic(
        name_ids in collection::vec(0_u64..60, 1..12),
        seed in 0_u64..1000,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let names: Vec<String> =
            name_ids.iter().map(|id| format!("grp{}.metric{id}", id % 7)).collect();
        let prov = telemetry::Provenance {
            commit: "deadbeef".into(),
            hostname: "prop-host".into(),
            cores: 8,
            rustc: "rustc test".into(),
            os: "test-os".into(),
        };
        let meta = telemetry::RunMeta {
            run_id: format!("prop-{seed}"),
            seed: Some(seed),
            config: vec![("case".into(), "determinism".into())],
        };

        // pass 1: insertion in given order, single thread
        telemetry::set_enabled(true);
        telemetry::reset();
        for (i, n) in names.iter().enumerate() {
            telemetry::counter_add(n, i as u64 + 1);
            telemetry::observe(n, (i + 1) as f64);
        }
        let body_a = telemetry::render_body(&meta, &prov, &telemetry::snapshot());

        // pass 2: reversed insertion order, touched from spawned threads
        telemetry::reset();
        std::thread::scope(|s| {
            for (i, n) in names.iter().enumerate().rev() {
                s.spawn(move || {
                    telemetry::counter_add(n, i as u64 + 1);
                    telemetry::observe(n, (i + 1) as f64);
                }).join().unwrap();
            }
        });
        let body_b = telemetry::render_body(&meta, &prov, &telemetry::snapshot());

        prop_assert_eq!(&body_a, &body_b);
        // and the sealed envelope round-trips through verification
        let sealed = telemetry::seal_body(&body_a);
        prop_assert_eq!(telemetry::manifest_body(&sealed).unwrap(), body_a.as_str());

        telemetry::set_enabled(false);
        telemetry::reset();
    }
}
