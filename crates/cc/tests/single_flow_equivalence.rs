//! The rewrite's equivalence contract, protocol by protocol.
//!
//! [`FlowSim`] is now a thin wrapper over a 1-flow `MultiFlowSim`; the
//! engine it replaced is preserved verbatim in `netsim::reference`. For
//! every shipped protocol, over random adversarial link schedules, the two
//! must produce *bit-identical* trajectories — same interval statistics,
//! same smoothed RTT, same clock, packet for packet. Any divergence means
//! the multi-flow generalization changed single-flow semantics, which is
//! exactly the regression this suite exists to catch.

use cc::{Bbr, Copa, Cubic, Reno, Vivace};
use netsim::reference::RefFlowSim;
use netsim::{CongestionControl, FlowSim, IntervalStats, LinkParams, SimConfig, MS};
use proptest::prelude::*;

fn make(protocol: usize) -> (&'static str, Box<dyn CongestionControl>) {
    match protocol {
        0 => ("bbr", Box::new(Bbr::new())),
        1 => ("cubic", Box::new(Cubic::new())),
        2 => ("reno", Box::new(Reno::new())),
        3 => ("copa", Box::new(Copa::new())),
        _ => ("vivace", Box::new(Vivace::new())),
    }
}

/// Bit-exact signature of one interval (floats as bits).
fn sig(s: &IntervalStats) -> Vec<u64> {
    vec![
        s.duration_s.to_bits(),
        s.delivered_bytes,
        s.capacity_bytes.to_bits(),
        s.utilization.to_bits(),
        s.throughput_mbps.to_bits(),
        s.avg_rtt_ms.to_bits(),
        s.avg_queue_delay_ms.to_bits(),
        s.packets_sent,
        s.packets_delivered,
        s.packets_lost_random,
        s.packets_lost_overflow,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_protocol_is_bit_identical_to_the_legacy_engine(
        protocol in 0_usize..5,
        seed in 0_u64..10_000,
        segs in proptest::collection::vec(
            (6.0_f64..24.0, 15.0_f64..60.0, 0.0_f64..0.10), 2..8),
    ) {
        let (_name, cc_new) = make(protocol);
        let (_, cc_ref) = make(protocol);
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let start = LinkParams::new(12.0, 30.0, 0.0);
        let mut new_sim = FlowSim::new(cc_new, start, cfg.clone());
        let mut ref_sim = RefFlowSim::new(cc_ref, start, cfg);
        for &(bw, lat, loss) in segs.iter() {
            let p = LinkParams::new(bw, lat, loss);
            new_sim.set_link(p);
            ref_sim.set_link(p);
            // hold each adversary segment for 10 paper-granularity intervals
            for _ in 0..10 {
                let a = new_sim.run_for(30 * MS);
                let b = ref_sim.run_for(30 * MS);
                prop_assert_eq!(sig(&a), sig(&b));
                prop_assert_eq!(new_sim.srtt_s().to_bits(), ref_sim.srtt_s().to_bits());
                prop_assert_eq!(new_sim.now(), ref_sim.now());
                prop_assert_eq!(new_sim.inflight_bytes(), ref_sim.inflight_bytes());
                prop_assert_eq!(new_sim.queue_bytes(), ref_sim.queue_bytes());
            }
        }
    }
}
