use cc::Bbr;
use netsim::{FlowSim, LinkParams, SimConfig, MS};

#[test]
#[ignore]
fn probe() {
    let mut sim =
        FlowSim::new(Box::new(Bbr::new()), LinkParams::new(12.0, 25.0, 0.0), SimConfig::default());
    for i in 0..100 {
        let st = sim.run_for(100 * MS);
        if i % 2 == 0 {
            println!(
                "t={:5.1}s tput={:6.2} util={:.2} rtt={:5.1}ms inflight={} srtt={:.3} sent={} lost_ovf={}",
                (i + 1) as f64 * 0.1,
                st.throughput_mbps,
                st.utilization,
                st.avg_rtt_ms,
                sim.inflight_bytes(),
                sim.srtt_s(),
                st.packets_sent,
                st.packets_lost_overflow,
            );
        }
    }
}
