// Diagnostic: track BBR internals while replaying adversary-like conditions.
use cc::Bbr;
use netsim::{
    AckEvent, BitsPerSec, CongestionControl, FlowSim, LinkParams, Nanosecs, SimConfig, MS,
};
use std::sync::{Arc, Mutex};

struct Spy {
    inner: Bbr,
    log: Arc<Mutex<Vec<String>>>,
    last_log: f64,
}
impl CongestionControl for Spy {
    fn name(&self) -> &str {
        "spy"
    }
    fn on_ack(&mut self, ack: &AckEvent) {
        self.inner.on_ack(ack);
        if ack.now_s() - self.last_log > 0.5 {
            self.last_log = ack.now_s();
            self.log.lock().unwrap().push(format!(
                "t={:5.2} state={:?} btlbw={:6.2}Mbps rtprop={:.0}ms pacing={:6.2}Mbps cwnd={:5.1} rate_sample={:6.2}",
                ack.now_s(), self.inner.state(), self.inner.btl_bw_bps()/1e6,
                self.inner.rt_prop_s()*1e3, self.inner.pacing_rate().bps()/1e6,
                self.inner.cwnd_packets(), ack.delivery_rate_bps()/1e6));
        }
    }
    fn on_loss(&mut self, l: usize, t: Nanosecs) {
        self.inner.on_loss(l, t)
    }
    fn on_rto(&mut self, t: Nanosecs) {
        self.log.lock().unwrap().push(format!("t={:5.2} RTO", t.as_secs_f64()));
        self.inner.on_rto(t)
    }
    fn pacing_rate(&self) -> BitsPerSec {
        self.inner.pacing_rate()
    }
    fn cwnd_packets(&self) -> f64 {
        self.inner.cwnd_packets()
    }
}

#[test]
#[ignore]
fn spy_on_bbr() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let spy = Spy { inner: Bbr::new(), log: log.clone(), last_log: -1.0 };
    let mut sim =
        FlowSim::new(Box::new(spy), LinkParams::new(20.0, 30.0, 0.10), SimConfig::default());
    for i in 0..500 {
        let lat = if i % 4 < 2 { 15.0 } else { 60.0 };
        sim.set_link(LinkParams::new(22.0, lat, 0.10));
        sim.run_for(30 * MS);
    }
    for line in log.lock().unwrap().iter() {
        println!("{line}");
    }
}

#[test]
#[ignore]
fn recovery_after_crush() {
    use rand::{Rng, SeedableRng};
    let log = Arc::new(Mutex::new(Vec::new()));
    let spy = Spy { inner: Bbr::new(), log: log.clone(), last_log: -1.0 };
    let mut sim =
        FlowSim::new(Box::new(spy), LinkParams::new(20.0, 30.0, 0.0), SimConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    // phase 1: 5 s crush (latency oscillation + loss)
    for i in 0..167 {
        let lat = if i % 4 < 2 { 15.0 } else { 60.0 };
        sim.set_link(LinkParams::new(22.0, lat, 0.08));
        sim.run_for(30 * MS);
    }
    // phase 2: 20 s of mild jitter (like the noisy learned policy)
    let mut total_del = 0u64;
    let mut total_cap = 0.0;
    for _ in 0..667 {
        let bw = rng.gen_range(20.0..24.0);
        let lat = rng.gen_range(50.0..60.0);
        let loss = if rng.gen::<f64>() < 0.1 { 0.04 } else { 0.0 };
        sim.set_link(LinkParams::new(bw, lat, loss));
        let st = sim.run_for(30 * MS);
        total_del += st.delivered_bytes;
        total_cap += st.capacity_bytes;
    }
    for line in log.lock().unwrap().iter() {
        println!("{line}");
    }
    println!("phase-2 utilization: {:.1}%", 100.0 * total_del as f64 / total_cap);
}
