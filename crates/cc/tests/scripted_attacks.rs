//! Scripted (non-learned) attacks on BBR's probing, used to calibrate the
//! thresholds in examples/bbr_probe_exploit.rs and to pin the exploit
//! mechanism with assertions.
use cc::Bbr;
use netsim::{FlowSim, LinkParams, SimConfig, MS, SEC};

fn run(steps: usize, mut ctl: impl FnMut(usize, f64, f64) -> LinkParams) -> f64 {
    let mut sim =
        FlowSim::new(Box::new(Bbr::new()), LinkParams::new(15.0, 30.0, 0.0), SimConfig::default());
    sim.run_for(3 * SEC);
    let (mut util, mut qd) = (1.0, 0.0);
    let (mut del, mut cap) = (0.0, 0.0);
    for i in 0..steps {
        sim.set_link(ctl(i, util, qd));
        let st = sim.run_for(30 * MS);
        util = st.utilization;
        qd = sim.queue_delay_ms();
        del += st.delivered_bytes as f64;
        cap += st.capacity_bytes;
    }
    del / cap
}

#[test]
#[ignore]
fn sweep_probe_starvation_threshold() {
    for thr in [0.3, 0.45, 0.55, 0.7, 0.85] {
        let u = run(1000, |_, util, _| {
            if util > thr {
                LinkParams::new(6.0, 30.0, 0.0)
            } else {
                LinkParams::new(24.0, 30.0, 0.0)
            }
        });
        println!("starve thr={thr}: util {:.1}%", u * 100.0);
    }
}

#[test]
#[ignore]
fn sweep_rtprop_pin() {
    // pin by periodic dips instead of threshold-reactive
    for period in [100usize, 200, 300] {
        let u = run(1000, |i, _, _| {
            if i % period < 2 {
                LinkParams::new(24.0, 15.0, 0.0)
            } else {
                LinkParams::new(24.0, 60.0, 0.0)
            }
        });
        println!("pin period={period} (x30ms): util {:.1}%", u * 100.0);
    }
    // threshold-reactive with low trigger
    for thr in [0.3, 0.5, 0.7] {
        let u = run(1000, |_, util, _| {
            if util > thr {
                LinkParams::new(24.0, 15.0, 0.0)
            } else {
                LinkParams::new(24.0, 60.0, 0.0)
            }
        });
        println!("pin reactive thr={thr}: util {:.1}%", u * 100.0);
    }
}
