//! Copa (Arun & Balakrishnan, NSDI '18): practical delay-based congestion
//! control — one of the recently proposed protocols the paper lists as
//! having no "clear weaknesses" (§4), included so the adversarial framework
//! can be pointed at a delay-based design.
//!
//! Model-level implementation of the core mechanism:
//!
//! * `d_q = RTT_standing − RTT_min` estimates queueing delay
//!   (RTT_standing = min RTT over the last srtt/2, RTT_min over 10 s).
//! * target rate `λ_t = 1 / (δ · d_q)` packets/s (δ = 0.5 by default).
//! * current rate `λ = cwnd / RTT_standing`; cwnd moves toward the target
//!   by `v / (δ · cwnd)` per ACK, with velocity doubling when the direction
//!   persists across RTTs.

use crate::filters::WindowedMin;
use netsim::{AckEvent, BitsPerSec, CongestionControl, Nanosecs};

const MSS: f64 = 1500.0;

/// Copa congestion control.
#[derive(Debug, Clone)]
pub struct Copa {
    /// Tradeoff parameter δ: higher = less aggressive.
    pub delta: f64,
    cwnd: f64,
    /// Velocity for cwnd updates (doubles while direction persists).
    velocity: f64,
    /// +1 when increasing, −1 when decreasing.
    direction: f64,
    /// Time the current direction started.
    direction_since: f64,
    /// Round-trip minimum over a long window (propagation estimate).
    rtt_min: WindowedMin,
    /// Standing RTT: min over roughly the last half-RTT.
    rtt_standing: WindowedMin,
    srtt_s: f64,
    /// Number of direction-consistent RTTs (for velocity doubling).
    steady_rtts: f64,
}

impl Default for Copa {
    fn default() -> Self {
        Self::new()
    }
}

impl Copa {
    pub fn new() -> Self {
        Copa {
            delta: 0.5,
            cwnd: 10.0,
            velocity: 1.0,
            direction: 1.0,
            direction_since: 0.0,
            rtt_min: WindowedMin::new(10.0),
            rtt_standing: WindowedMin::new(0.1),
            srtt_s: 0.1,
            steady_rtts: 0.0,
        }
    }

    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Estimated queueing delay in seconds.
    pub fn queueing_delay_s(&self) -> f64 {
        match (self.rtt_standing.get(), self.rtt_min.get()) {
            (Some(st), Some(min)) => (st - min).max(0.0),
            _ => 0.0,
        }
    }
}

impl CongestionControl for Copa {
    fn name(&self) -> &str {
        "copa"
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.srtt_s = 0.875 * self.srtt_s + 0.125 * ack.rtt_s();
        self.rtt_min.update(ack.now_s(), ack.rtt_s());
        // standing window tracks ~srtt/2 of history
        self.rtt_standing = {
            let mut w = WindowedMin::new((self.srtt_s / 2.0).max(0.01));
            // reuse the filter by re-inserting the newest sample; the short
            // window forgets older samples naturally on subsequent updates
            std::mem::swap(&mut w, &mut self.rtt_standing);
            w
        };
        self.rtt_standing.update(ack.now_s(), ack.rtt_s());

        let d_q = self.queueing_delay_s();
        let standing = self.rtt_standing.get().unwrap_or(self.srtt_s).max(1e-4);
        // target rate in packets per second; when the queue is empty the
        // target is effectively unbounded and Copa increases
        let target_pps = if d_q > 1e-6 { 1.0 / (self.delta * d_q) } else { f64::INFINITY };
        let current_pps = self.cwnd / standing;

        let new_direction = if current_pps < target_pps { 1.0 } else { -1.0 };
        if new_direction == self.direction {
            // velocity doubles each RTT the direction persists
            if ack.now_s() - self.direction_since > self.srtt_s {
                self.steady_rtts += 1.0;
                self.direction_since = ack.now_s();
                if self.steady_rtts >= 3.0 {
                    self.velocity = (self.velocity * 2.0).min(self.cwnd.max(1.0));
                }
            }
        } else {
            self.direction = new_direction;
            self.direction_since = ack.now_s();
            self.velocity = 1.0;
            self.steady_rtts = 0.0;
        }
        self.cwnd += self.direction * self.velocity / (self.delta * self.cwnd);
        self.cwnd = self.cwnd.max(2.0);
    }

    fn on_loss(&mut self, _lost: usize, _now: Nanosecs) {
        // Copa v1 reacts to loss only via its delay signal (a drop implies a
        // full queue, which the standing RTT already reflects); its TCP
        // mode is out of scope here.
    }

    fn on_rto(&mut self, _now: Nanosecs) {
        self.cwnd = 2.0;
        self.velocity = 1.0;
        self.steady_rtts = 0.0;
    }

    fn pacing_rate(&self) -> BitsPerSec {
        // pace the window over the standing RTT with modest headroom
        let standing = self.rtt_standing.get().unwrap_or(self.srtt_s).max(1e-4);
        BitsPerSec::from_bps(2.0 * self.cwnd * MSS * 8.0 / standing)
    }

    fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowSim, LinkParams, SimConfig, SEC};

    #[test]
    fn fills_a_clean_link() {
        let mut sim = FlowSim::new(
            Box::new(Copa::new()),
            LinkParams::new(12.0, 25.0, 0.0),
            SimConfig::default(),
        );
        sim.run_for(5 * SEC);
        let stats = sim.run_for(10 * SEC);
        assert!(stats.utilization > 0.8, "Copa on a clean link: {}", stats.utilization);
    }

    #[test]
    fn keeps_delay_lower_than_cubic() {
        let run = |cc: Box<dyn netsim::CongestionControl>| {
            let mut sim = FlowSim::new(cc, LinkParams::new(12.0, 25.0, 0.0), SimConfig::default());
            sim.run_for(5 * SEC);
            sim.run_for(10 * SEC).avg_queue_delay_ms
        };
        let copa_delay = run(Box::<Copa>::default());
        let cubic_delay = run(Box::<crate::Cubic>::default());
        assert!(
            copa_delay < cubic_delay,
            "delay-based Copa ({copa_delay:.1} ms) should hold a smaller queue than Cubic ({cubic_delay:.1} ms)"
        );
    }

    #[test]
    fn tolerates_moderate_loss() {
        let mut sim = FlowSim::new(
            Box::new(Copa::new()),
            LinkParams::new(12.0, 25.0, 0.02),
            SimConfig::default(),
        );
        sim.run_for(5 * SEC);
        let stats = sim.run_for(15 * SEC);
        assert!(
            stats.utilization > 0.5,
            "Copa ignores random loss by design: {}",
            stats.utilization
        );
    }

    #[test]
    fn direction_flips_reset_velocity() {
        let mut c = Copa::new();
        c.velocity = 8.0;
        c.direction = 1.0;
        // force a downward flip: large queueing delay
        c.rtt_min.update(0.0, 0.02);
        c.rtt_standing.update(0.0, 0.2);
        c.cwnd = 1000.0;
        c.on_ack(&AckEvent::from_raw(1.0, 0.2, 1e6, 1500, 0, 0, 0));
        assert_eq!(c.direction, -1.0);
        assert_eq!(c.velocity, 1.0);
    }

    #[test]
    fn rto_collapses_window() {
        let mut c = Copa::new();
        c.cwnd = 100.0;
        c.on_rto(Nanosecs::from_secs_f64(1.0));
        assert_eq!(c.cwnd(), 2.0);
    }
}
