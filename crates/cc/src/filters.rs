//! Windowed max/min filters — the estimators at the heart of BBR.
//!
//! BBR's exploitable weakness (per the paper) is precisely that these
//! filters are updated by *infrequent probing*: BtlBw is a windowed
//! maximum over ~10 round trips, RTprop a windowed minimum over 10
//! seconds. An adversary that degrades the link only while the filters are
//! sampling leaves BBR with a stale, pessimistic model for the next ten
//! seconds.

use std::collections::VecDeque;

/// Maximum over a sliding window keyed by an arbitrary monotone axis
/// (round count for BtlBw).
#[derive(Debug, Clone, Default)]
pub struct WindowedMax {
    /// Monotone-decreasing values with their keys.
    samples: VecDeque<(f64, f64)>,
    window: f64,
}

impl WindowedMax {
    /// `window` in key units (e.g. 10 rounds).
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0);
        WindowedMax { samples: VecDeque::new(), window }
    }

    /// Insert `(key, value)`; keys must be non-decreasing.
    pub fn update(&mut self, key: f64, value: f64) {
        while let Some(&(_, back)) = self.samples.back() {
            if back <= value {
                self.samples.pop_back();
            } else {
                break;
            }
        }
        self.samples.push_back((key, value));
        self.expire(key);
    }

    fn expire(&mut self, now_key: f64) {
        while let Some(&(k, _)) = self.samples.front() {
            if k < now_key - self.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current windowed maximum (None before any sample).
    pub fn get(&self) -> Option<f64> {
        self.samples.front().map(|&(_, v)| v)
    }
}

/// Minimum over a sliding window (time axis for RTprop).
#[derive(Debug, Clone, Default)]
pub struct WindowedMin {
    samples: VecDeque<(f64, f64)>,
    window: f64,
}

impl WindowedMin {
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0);
        WindowedMin { samples: VecDeque::new(), window }
    }

    pub fn update(&mut self, key: f64, value: f64) {
        while let Some(&(_, back)) = self.samples.back() {
            if back >= value {
                self.samples.pop_back();
            } else {
                break;
            }
        }
        self.samples.push_back((key, value));
        self.expire(key);
    }

    fn expire(&mut self, now_key: f64) {
        while let Some(&(k, _)) = self.samples.front() {
            if k < now_key - self.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    pub fn get(&self) -> Option<f64> {
        self.samples.front().map(|&(_, v)| v)
    }

    /// Key (timestamp) at which the current minimum was recorded — BBR uses
    /// this to decide when RTprop is stale and ProbeRTT is due.
    pub fn min_key(&self) -> Option<f64> {
        self.samples.front().map(|&(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_tracks_peak_until_expiry() {
        let mut f = WindowedMax::new(10.0);
        f.update(0.0, 5.0);
        f.update(1.0, 9.0);
        f.update(2.0, 3.0);
        assert_eq!(f.get(), Some(9.0));
        // peak expires once the window slides past key 1.0
        f.update(11.5, 4.0);
        assert_eq!(f.get(), Some(4.0));
    }

    #[test]
    fn min_tracks_floor_until_expiry() {
        let mut f = WindowedMin::new(10.0);
        f.update(0.0, 0.050);
        f.update(1.0, 0.020);
        f.update(2.0, 0.080);
        assert_eq!(f.get(), Some(0.020));
        assert_eq!(f.min_key(), Some(1.0));
        f.update(12.0, 0.060);
        assert_eq!(f.get(), Some(0.060));
    }

    #[test]
    fn equal_values_keep_freshest() {
        let mut f = WindowedMin::new(10.0);
        f.update(0.0, 0.030);
        f.update(5.0, 0.030);
        // the later equal sample supersedes: min_key advances, deferring
        // staleness
        assert_eq!(f.min_key(), Some(5.0));
    }

    #[test]
    fn empty_filters_return_none() {
        assert_eq!(WindowedMax::new(1.0).get(), None);
        assert_eq!(WindowedMin::new(1.0).get(), None);
    }

    #[test]
    fn max_monotone_queue_bounded() {
        let mut f = WindowedMax::new(100.0);
        for i in 0..1000 {
            f.update(i as f64, (i % 7) as f64);
        }
        // monotone deque can hold at most the distinct descending run
        assert!(f.samples.len() <= 8);
        assert_eq!(f.get(), Some(6.0));
    }
}
