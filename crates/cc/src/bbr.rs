//! BBR v1 (Cardwell et al. 2016), model-level reimplementation.
//!
//! The state machine follows the Linux/IETF draft structure:
//!
//! * **Startup** — pacing gain 2/ln 2 ≈ 2.885 until the bandwidth estimate
//!   stops growing (< 25 % growth for 3 consecutive rounds).
//! * **Drain** — inverse gain until inflight falls to one BDP.
//! * **ProbeBW** — an eight-phase pacing-gain cycle
//!   `[1.25, 0.75, 1, 1, 1, 1, 1, 1]`, one phase per RTprop.
//! * **ProbeRTT** — every 10 s (when the RTprop sample goes stale), cwnd
//!   collapses to 4 packets for 200 ms to re-measure the propagation delay.
//!
//! The model: `BtlBw` = windowed max of delivery-rate samples over 10
//! packet-timed rounds; `RTprop` = windowed min RTT over 10 s;
//! `pacing = gain × BtlBw`, `cwnd = 2 × BDP`.
//!
//! The probing cadences — 1.25× probing once per 8-phase cycle and the
//! 10-second ProbeRTT — are exactly the "infrequent, but
//! performance-critical probing" the paper's adversary learns to attack
//! (Fig. 6: "Every 10 seconds, when BBR runs its probing phase, the
//! adversary suddenly varies bandwidth and latency").

use crate::filters::WindowedMax;
use netsim::{AckEvent, BitsPerSec, Bytes, CongestionControl, Nanosecs};

/// High gain used in Startup/Drain: 2/ln(2).
pub const HIGH_GAIN: f64 = 2.885;
/// ProbeBW pacing-gain cycle.
pub const PROBE_BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// BtlBw filter window, in rounds.
pub const BTLBW_WINDOW_ROUNDS: f64 = 10.0;
/// RTprop filter window / ProbeRTT interval, seconds.
pub const RTPROP_WINDOW_S: f64 = 10.0;
/// ProbeRTT duration, seconds.
pub const PROBE_RTT_DURATION_S: f64 = 0.2;
/// cwnd floor, packets.
pub const MIN_CWND_PKTS: f64 = 4.0;

const MSS: f64 = 1500.0;
/// Pace slightly below the modelled rate so sampling noise in the max
/// filter cannot build a standing queue (Linux `bbr_pacing_margin_percent`).
const PACING_MARGIN: f64 = 0.99;

/// Which phase of the BBR state machine is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BbrState {
    Startup,
    Drain,
    /// `phase` indexes [`PROBE_BW_GAINS`]; `since` is when it began.
    ProbeBw {
        phase: usize,
        since: f64,
    },
    /// `since` is entry time; `prior_probe_bw_phase` restores the cycle.
    ProbeRtt {
        since: f64,
        prior_probe_bw_phase: Option<usize>,
    },
}

/// BBR congestion control.
#[derive(Debug, Clone)]
pub struct Bbr {
    state: BbrState,
    btl_bw: WindowedMax,
    /// RTprop estimate: the minimum RTT seen, with the time it was last
    /// matched. Unlike a sliding-window minimum this does NOT decay on its
    /// own — going stale is what *triggers* ProbeRTT, which then resets it
    /// (Linux's `min_rtt_us` / `min_rtt_stamp` pair).
    rt_prop_est_s: f64,
    rt_prop_stamp_s: f64,
    /// Packet-timed round counting.
    round_count: u64,
    next_round_delivered: Bytes,
    round_start: bool,
    /// Startup full-pipe detection.
    full_bw_bps: f64,
    full_bw_count: u32,
    filled_pipe: bool,
    pacing_gain: f64,
    cwnd_gain: f64,
    /// Latest inflight report from the ACK path (bytes).
    inflight_bytes: usize,
    /// Minimum RTT observed during the current ProbeRTT episode.
    probe_rtt_min_s: f64,
    /// State-transition log `(time_s, state name)` for analysis/tests.
    transitions: Vec<(f64, &'static str)>,
}

impl Default for Bbr {
    fn default() -> Self {
        Self::new()
    }
}

impl Bbr {
    pub fn new() -> Self {
        Bbr {
            state: BbrState::Startup,
            btl_bw: WindowedMax::new(BTLBW_WINDOW_ROUNDS),
            rt_prop_est_s: f64::INFINITY,
            rt_prop_stamp_s: 0.0,
            round_count: 0,
            next_round_delivered: Bytes::ZERO,
            round_start: false,
            full_bw_bps: 0.0,
            full_bw_count: 0,
            filled_pipe: false,
            pacing_gain: HIGH_GAIN,
            cwnd_gain: HIGH_GAIN,
            inflight_bytes: 0,
            probe_rtt_min_s: f64::INFINITY,
            transitions: vec![(0.0, "startup")],
        }
    }

    pub fn state(&self) -> BbrState {
        self.state
    }

    /// Bandwidth estimate in bits/s (the model's BtlBw).
    pub fn btl_bw_bps(&self) -> f64 {
        self.btl_bw.get().unwrap_or(1e6)
    }

    /// Propagation-delay estimate in seconds (the model's RTprop).
    pub fn rt_prop_s(&self) -> f64 {
        if self.rt_prop_est_s.is_finite() {
            self.rt_prop_est_s
        } else {
            0.1
        }
    }

    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> f64 {
        self.btl_bw_bps() / 8.0 * self.rt_prop_s()
    }

    /// State transition log: `(time_s, state name)`.
    pub fn transitions(&self) -> &[(f64, &'static str)] {
        &self.transitions
    }

    /// Number of completed packet-timed rounds.
    pub fn rounds(&self) -> u64 {
        self.round_count
    }

    fn enter(&mut self, now_s: f64, state: BbrState) {
        let name = match state {
            BbrState::Startup => "startup",
            BbrState::Drain => "drain",
            BbrState::ProbeBw { .. } => "probe_bw",
            BbrState::ProbeRtt { .. } => "probe_rtt",
        };
        self.state = state;
        self.transitions.push((now_s, name));
    }

    fn update_round(&mut self, ack: &AckEvent) {
        if ack.delivered_at_send >= self.next_round_delivered {
            self.next_round_delivered = ack.delivered;
            self.round_count += 1;
            self.round_start = true;
        } else {
            self.round_start = false;
        }
    }

    fn check_full_pipe(&mut self) {
        if self.filled_pipe || !self.round_start {
            return;
        }
        let bw = self.btl_bw_bps();
        if bw > self.full_bw_bps * 1.25 {
            self.full_bw_bps = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
            if self.full_bw_count >= 3 {
                self.filled_pipe = true;
            }
        }
    }

    fn advance_machine(&mut self, ack: &AckEvent) {
        let now = ack.now_s();
        match self.state {
            BbrState::Startup => {
                self.pacing_gain = HIGH_GAIN;
                self.cwnd_gain = HIGH_GAIN;
                self.check_full_pipe();
                if self.filled_pipe {
                    self.enter(now, BbrState::Drain);
                }
            }
            BbrState::Drain => {
                self.pacing_gain = 1.0 / HIGH_GAIN;
                self.cwnd_gain = HIGH_GAIN;
                if (self.inflight_bytes as f64) <= self.bdp_bytes() {
                    self.enter(now, BbrState::ProbeBw { phase: 2, since: now });
                }
            }
            BbrState::ProbeBw { phase, since } => {
                self.cwnd_gain = 2.0;
                self.pacing_gain = PROBE_BW_GAINS[phase];
                let elapsed = now - since;
                let advance = if (self.pacing_gain - 0.75).abs() < 1e-9 {
                    // leave the drain phase as soon as the queue is drained
                    elapsed > self.rt_prop_s() || (self.inflight_bytes as f64) <= self.bdp_bytes()
                } else {
                    elapsed > self.rt_prop_s()
                };
                if advance {
                    let next = (phase + 1) % PROBE_BW_GAINS.len();
                    self.state = BbrState::ProbeBw { phase: next, since: now };
                }
            }
            BbrState::ProbeRtt { since, prior_probe_bw_phase } => {
                self.pacing_gain = 1.0;
                self.cwnd_gain = 1.0;
                self.probe_rtt_min_s = self.probe_rtt_min_s.min(ack.rtt_s());
                if now - since >= PROBE_RTT_DURATION_S {
                    // refresh the RTprop estimate with the episode's floor
                    // so the staleness clock restarts (Linux BBR's
                    // min_rtt_stamp reset)
                    if self.probe_rtt_min_s.is_finite() {
                        self.rt_prop_est_s = self.probe_rtt_min_s;
                        self.rt_prop_stamp_s = now;
                    }
                    if self.filled_pipe {
                        let phase = prior_probe_bw_phase.unwrap_or(2);
                        self.enter(now, BbrState::ProbeBw { phase, since: now });
                    } else {
                        self.enter(now, BbrState::Startup);
                    }
                }
            }
        }

        // ProbeRTT entry: RTprop sample stale
        if !matches!(self.state, BbrState::ProbeRtt { .. }) {
            let stale =
                self.rt_prop_est_s.is_finite() && now - self.rt_prop_stamp_s > RTPROP_WINDOW_S;
            if stale {
                let prior = match self.state {
                    BbrState::ProbeBw { phase, .. } => Some(phase),
                    _ => None,
                };
                self.probe_rtt_min_s = f64::INFINITY;
                self.enter(now, BbrState::ProbeRtt { since: now, prior_probe_bw_phase: prior });
            }
        }
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &str {
        "bbr"
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.inflight_bytes = ack.inflight_bytes();
        self.update_round(ack);
        // BtlBw: windowed max over rounds
        self.btl_bw.update(self.round_count as f64, ack.delivery_rate_bps());
        // RTprop: running min; matching the floor refreshes the stamp
        if ack.rtt_s() <= self.rt_prop_est_s {
            self.rt_prop_est_s = ack.rtt_s();
            self.rt_prop_stamp_s = ack.now_s();
        }
        self.advance_machine(ack);
    }

    fn on_loss(&mut self, _lost: usize, _now: Nanosecs) {
        // BBRv1 ignores individual losses by design (its loss-agnosticism
        // is exactly why the paper's Table 1 adversary cannot beat it with
        // loss alone and must attack the probing instead).
    }

    fn on_rto(&mut self, now: Nanosecs) {
        // conservative restart: forget the model, back to Startup
        self.full_bw_bps = 0.0;
        self.full_bw_count = 0;
        self.filled_pipe = false;
        self.enter(now.as_secs_f64(), BbrState::Startup);
    }

    fn pacing_rate(&self) -> BitsPerSec {
        BitsPerSec::from_bps(PACING_MARGIN * self.pacing_gain * self.btl_bw_bps())
    }

    fn cwnd_packets(&self) -> f64 {
        if matches!(self.state, BbrState::ProbeRtt { .. }) {
            return MIN_CWND_PKTS;
        }
        (self.cwnd_gain * self.bdp_bytes() / MSS).max(MIN_CWND_PKTS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowSim, LinkParams, SimConfig, MS, SEC};

    fn bbr_sim(params: LinkParams, seed: u64) -> FlowSim {
        FlowSim::new(Box::new(Bbr::new()), params, SimConfig { seed, ..SimConfig::default() })
    }

    fn state_log(sim: &FlowSim) -> Vec<(f64, &'static str)> {
        // downcast via the transition log exposed on the trait object is
        // not possible; tests that need the log construct Bbr directly.
        let _ = sim;
        vec![]
    }

    #[test]
    fn startup_finds_bandwidth_quickly() {
        let mut sim = bbr_sim(LinkParams::new(12.0, 25.0, 0.0), 0);
        sim.run_for(3 * SEC);
        let stats = sim.run_for(3 * SEC);
        assert!(stats.utilization > 0.9, "post-startup utilization {}", stats.utilization);
    }

    #[test]
    fn steady_state_keeps_queue_small() {
        let mut sim = bbr_sim(LinkParams::new(12.0, 25.0, 0.0), 0);
        // warm past the first ProbeRTT so the startup queue has drained
        sim.run_for(12 * SEC);
        let stats = sim.run_for(10 * SEC);
        // BBR's raison d'être: full throughput without standing queues
        assert!(stats.utilization > 0.9, "{}", stats.utilization);
        assert!(
            stats.avg_queue_delay_ms < 30.0,
            "standing queue too large: {} ms",
            stats.avg_queue_delay_ms
        );
    }

    #[test]
    fn survives_heavy_random_loss() {
        let mut sim = bbr_sim(LinkParams::new(12.0, 25.0, 0.08), 3);
        sim.run_for(5 * SEC);
        let stats = sim.run_for(15 * SEC);
        assert!(stats.utilization > 0.7, "BBR under 8% loss: {}", stats.utilization);
    }

    #[test]
    fn adapts_to_bandwidth_increase() {
        let mut sim = bbr_sim(LinkParams::new(6.0, 25.0, 0.0), 0);
        sim.run_for(5 * SEC);
        sim.set_link(LinkParams::new(18.0, 25.0, 0.0));
        sim.run_for(5 * SEC); // give the 1.25 probe a few cycles
        let stats = sim.run_for(5 * SEC);
        assert!(
            stats.throughput_mbps > 15.0,
            "BBR must discover tripled bandwidth: {}",
            stats.throughput_mbps
        );
    }

    #[test]
    fn adapts_to_bandwidth_decrease() {
        let mut sim = bbr_sim(LinkParams::new(24.0, 25.0, 0.0), 0);
        sim.run_for(5 * SEC);
        sim.set_link(LinkParams::new(6.0, 25.0, 0.0));
        // the stale 24 Mbit/s max-filter entry ages out after ~10 rounds
        sim.run_for(8 * SEC);
        let stats = sim.run_for(5 * SEC);
        assert!(
            (stats.throughput_mbps - 6.0).abs() < 1.0,
            "BBR must converge down: {}",
            stats.throughput_mbps
        );
    }

    #[test]
    fn probe_rtt_happens_roughly_every_ten_seconds() {
        // drive the machine directly so the transition log is accessible
        let mut bbr = Bbr::new();
        let mut now: f64 = 0.0;
        let mut delivered: u64 = 0;
        let mut probe_rtt_entries = 0;
        let mut last: &'static str = "startup";
        while now < 35.0 {
            now += 0.025;
            delivered += 30_000;
            // the true floor appears only early on; afterwards a small
            // standing queue keeps RTT samples above it (as on real links),
            // so the RTprop sample ages and ProbeRTT must fire
            let rtt = if now < 0.5 { 0.05 } else { 0.053 + 0.002 * (now * 3.0).sin().abs() };
            let ack = netsim::AckEvent::from_raw(
                now,
                rtt,
                12e6,
                1500,
                50_000,
                delivered,
                delivered.saturating_sub(20_000),
            );
            bbr.on_ack(&ack);
        }
        for &(_, name) in bbr.transitions() {
            if name == "probe_rtt" && last != "probe_rtt" {
                probe_rtt_entries += 1;
            }
            last = name;
        }
        // ~35 s with a 10 s RTprop window: expect ≈3 ProbeRTT episodes
        assert!(
            (2..=4).contains(&probe_rtt_entries),
            "ProbeRTT entries in 35 s: {probe_rtt_entries}"
        );
        let _ = state_log;
    }

    #[test]
    fn probe_bw_cycle_visits_high_gain() {
        let mut bbr = Bbr::new();
        let mut now: f64 = 0.0;
        let mut delivered: u64 = 0;
        let mut seen_gains = std::collections::BTreeSet::new();
        while now < 8.0 {
            now += 0.02;
            delivered += 30_000;
            bbr.on_ack(&netsim::AckEvent::from_raw(
                now,
                0.05,
                12e6,
                1500,
                40_000,
                delivered,
                delivered.saturating_sub(20_000),
            ));
            if matches!(bbr.state(), BbrState::ProbeBw { .. }) {
                seen_gains.insert((bbr.pacing_gain * 100.0) as i64);
            }
        }
        assert!(seen_gains.contains(&125), "must probe at 1.25x: {seen_gains:?}");
        assert!(seen_gains.contains(&75), "must drain at 0.75x: {seen_gains:?}");
        assert!(seen_gains.contains(&100), "must cruise at 1.0x: {seen_gains:?}");
    }

    #[test]
    fn cwnd_floor_during_probe_rtt() {
        let mut bbr = Bbr::new();
        bbr.enter(0.0, BbrState::ProbeRtt { since: 0.0, prior_probe_bw_phase: None });
        assert_eq!(bbr.cwnd_packets(), MIN_CWND_PKTS);
    }

    #[test]
    fn rto_resets_to_startup() {
        let mut bbr = Bbr::new();
        bbr.enter(1.0, BbrState::ProbeBw { phase: 0, since: 1.0 });
        bbr.on_rto(Nanosecs::from_secs_f64(2.0));
        assert_eq!(bbr.state(), BbrState::Startup);
    }

    #[test]
    fn interval_probe_30ms_granularity_works() {
        // sanity for the adversary loop: 1000 × 30 ms steps run fine
        let mut sim = bbr_sim(LinkParams::new(12.0, 30.0, 0.0), 0);
        let mut total_delivered = 0u64;
        for _ in 0..1000 {
            let st = sim.run_for(30 * MS);
            total_delivered += st.delivered_bytes;
        }
        let mbps = total_delivered as f64 * 8.0 / 30.0 / 1e6;
        assert!(mbps > 10.0, "30 s of 30 ms slices: {mbps} Mbit/s");
    }
}
