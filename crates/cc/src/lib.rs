//! Congestion-control protocols over the [`netsim`] link emulator.
//!
//! The paper's case study (§4) is **BBR**: its adversary exploits BBR's
//! "infrequent, but performance-critical probing" to pull throughput down
//! to 45–65 % of link capacity. [`Bbr`] reimplements the BBRv1 state
//! machine with exactly the pieces the exploit depends on — the 10-round
//! windowed-max bandwidth filter, the 10-second windowed-min RTT filter,
//! the ProbeBW pacing-gain cycle, and the ~10-second ProbeRTT episode.
//!
//! [`Cubic`] and [`Reno`] provide the loss-based baselines the paper
//! mentions ("TCP congestion control variants like Cubic, Reno and HTCP
//! all share a trivial weakness to packet loss even as low as 1 %") —
//! reproduced as an ablation in the benchmark suite. [`Copa`] (delay-based)
//! and [`Vivace`] (online-learning) round out the §4 list of modern
//! protocols "without clear weaknesses", so the adversarial framework can
//! be pointed at every design family.

pub mod bbr;
pub mod copa;
pub mod cubic;
pub mod filters;
pub mod reno;
pub mod vivace;

pub use bbr::{Bbr, BbrState};
pub use copa::Copa;
pub use cubic::Cubic;
pub use filters::{WindowedMax, WindowedMin};
pub use reno::Reno;
pub use vivace::Vivace;

#[cfg(test)]
mod integration_tests {
    use crate::{Bbr, Cubic, Reno};
    use netsim::{FlowSim, LinkParams, SimConfig, SEC};

    fn run(
        cc: Box<dyn netsim::CongestionControl>,
        params: LinkParams,
        warmup_s: u64,
        measure_s: u64,
    ) -> f64 {
        let mut sim = FlowSim::new(cc, params, SimConfig::default());
        sim.run_for(warmup_s * SEC);
        let stats = sim.run_for(measure_s * SEC);
        stats.utilization
    }

    #[test]
    fn all_protocols_fill_a_clean_link() {
        let params = LinkParams::new(12.0, 25.0, 0.0);
        for (name, cc) in [
            ("bbr", Box::new(Bbr::new()) as Box<dyn netsim::CongestionControl>),
            ("cubic", Box::new(Cubic::new())),
            ("reno", Box::new(Reno::new())),
        ] {
            let util = run(cc, params, 5, 15);
            assert!(util > 0.85, "{name} on a clean link: utilization {util}");
        }
    }

    /// The paper's premise: loss-based TCP collapses under even 1–2 % loss
    /// while BBR shrugs it off.
    #[test]
    fn loss_tolerance_separates_bbr_from_loss_based_tcp() {
        let params = LinkParams::new(12.0, 25.0, 0.02);
        let bbr = run(Box::new(Bbr::new()), params, 5, 20);
        let cubic = run(Box::new(Cubic::new()), params, 5, 20);
        let reno = run(Box::new(Reno::new()), params, 5, 20);
        assert!(bbr > 0.8, "BBR under 2% loss: {bbr}");
        assert!(cubic < 0.6, "Cubic under 2% loss should collapse: {cubic}");
        assert!(reno < 0.6, "Reno under 2% loss should collapse: {reno}");
    }
}
