//! TCP Cubic (Ha, Rhee, Xu 2008): the loss-based baseline.
//!
//! Window growth follows `W(t) = C·(t − K)³ + W_max` after each loss event,
//! with multiplicative decrease β = 0.7. The paper cites Cubic's "trivial
//! weakness to packet loss even as low as 1 %" — reproduced by the
//! benchmark ablations.

use netsim::{AckEvent, BitsPerSec, CongestionControl, Nanosecs};

const MSS: f64 = 1500.0;
/// Cubic's scaling constant (Linux default).
const C: f64 = 0.4;
/// Multiplicative decrease factor.
const BETA: f64 = 0.7;

/// TCP Cubic.
#[derive(Debug, Clone)]
pub struct Cubic {
    /// Congestion window in packets.
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// Time of the last reduction (cubic epoch origin).
    epoch_start: Option<f64>,
    /// Plateau offset: K = cbrt(w_max·(1−β)/C).
    k: f64,
    srtt_s: f64,
    /// Ignore further losses until this time (one reduction per RTT).
    recovery_until_s: f64,
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl Cubic {
    pub fn new() -> Self {
        Cubic {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            srtt_s: 0.1,
            recovery_until_s: 0.0,
        }
    }

    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn reduce(&mut self, now_s: f64) {
        if now_s < self.recovery_until_s {
            return; // at most one reduction per RTT
        }
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * BETA).max(2.0);
        self.ssthresh = self.cwnd;
        self.k = (self.w_max * (1.0 - BETA) / C).cbrt();
        self.epoch_start = Some(now_s);
        self.recovery_until_s = now_s + self.srtt_s;
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &str {
        "cubic"
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.srtt_s = if self.srtt_s == 0.0 {
            ack.rtt_s()
        } else {
            0.875 * self.srtt_s + 0.125 * ack.rtt_s()
        };
        // RFC 3168-style ECN response: a Congestion-Experienced echo is
        // treated as a loss signal (window reduction), but nothing was
        // actually dropped. The once-per-RTT guard in `reduce` absorbs
        // the per-ACK mark bursts DCTCP-style thresholds produce.
        if ack.ecn {
            self.reduce(ack.now_s());
        }
        if self.in_slow_start() {
            self.cwnd += 1.0;
            return;
        }
        let epoch = *self.epoch_start.get_or_insert(ack.now_s());
        let t = ack.now_s() - epoch;
        let target = C * (t - self.k).powi(3) + self.w_max;
        if target > self.cwnd {
            // approach the cubic target one segment-fraction per ACK
            self.cwnd += (target - self.cwnd) / self.cwnd;
        } else {
            // TCP-friendly floor: tiny Reno-like growth
            self.cwnd += 0.01 / self.cwnd;
        }
    }

    fn on_loss(&mut self, _lost: usize, now: Nanosecs) {
        self.reduce(now.as_secs_f64());
    }

    fn on_rto(&mut self, now: Nanosecs) {
        self.ssthresh = (self.cwnd * 0.5).max(2.0);
        self.cwnd = 2.0;
        self.epoch_start = None;
        self.w_max = 0.0;
        self.recovery_until_s = now.as_secs_f64() + self.srtt_s;
    }

    fn pacing_rate(&self) -> BitsPerSec {
        // pace at 1.2× the window rate so pacing never throttles below cwnd
        BitsPerSec::from_bps(1.2 * self.cwnd * MSS * 8.0 / self.srtt_s.max(1e-3))
    }

    fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowSim, LinkParams, SimConfig, SEC};

    fn ack(now_s: f64, rtt_s: f64) -> AckEvent {
        AckEvent::from_raw(now_s, rtt_s, 10e6, 1500, 15_000, 0, 0)
    }

    fn loss(c: &mut Cubic, now_s: f64) {
        c.on_loss(1, Nanosecs::from_secs_f64(now_s));
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = Cubic::new();
        let w0 = c.cwnd();
        for i in 0..10 {
            c.on_ack(&ack(i as f64 * 0.01, 0.05));
        }
        assert_eq!(c.cwnd(), w0 + 10.0, "one packet per ACK in slow start");
    }

    #[test]
    fn loss_applies_beta() {
        let mut c = Cubic::new();
        c.ssthresh = 5.0; // force CA
        c.cwnd = 100.0;
        loss(&mut c, 1.0);
        assert!((c.cwnd() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn one_reduction_per_rtt() {
        let mut c = Cubic::new();
        c.cwnd = 100.0;
        c.ssthresh = 5.0;
        c.srtt_s = 0.1;
        loss(&mut c, 1.0);
        loss(&mut c, 1.05); // within the same RTT: ignored
        assert!((c.cwnd() - 70.0).abs() < 1e-9);
        loss(&mut c, 1.2);
        assert!((c.cwnd() - 49.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_growth_accelerates_past_plateau() {
        let mut c = Cubic::new();
        c.cwnd = 70.0;
        c.ssthresh = 5.0;
        c.w_max = 100.0;
        c.k = (100.0 * 0.3 / C).cbrt();
        c.epoch_start = Some(0.0);
        // near the plateau (t ≈ K) growth is slow
        c.on_ack(&ack(c.k, 0.05));
        let near_plateau = c.cwnd;
        // far past the plateau growth is fast
        for i in 0..50 {
            c.on_ack(&ack(c.k + 3.0 + i as f64 * 0.01, 0.05));
        }
        assert!(c.cwnd > near_plateau + 5.0, "{} vs {near_plateau}", c.cwnd);
    }

    #[test]
    fn ecn_mark_reduces_once_per_rtt() {
        let mut c = Cubic::new();
        c.ssthresh = 5.0; // force CA
        c.cwnd = 100.0;
        c.srtt_s = 0.1;
        let mut marked = ack(1.0, 0.05);
        marked.ecn = true;
        c.on_ack(&marked);
        let after_first = c.cwnd();
        assert!(after_first < 75.0, "ECN echo must shrink the window: {after_first}");
        let mut again = ack(1.01, 0.05);
        again.ecn = true;
        c.on_ack(&again); // same RTT: reduction suppressed (growth only)
        assert!(c.cwnd() >= after_first, "{} vs {after_first}", c.cwnd());
    }

    #[test]
    fn rto_collapses_window() {
        let mut c = Cubic::new();
        c.cwnd = 64.0;
        c.on_rto(Nanosecs::from_secs_f64(1.0));
        assert_eq!(c.cwnd(), 2.0);
        assert_eq!(c.ssthresh, 32.0);
    }

    #[test]
    fn fills_clean_link() {
        let mut sim = FlowSim::new(
            Box::new(Cubic::new()),
            LinkParams::new(12.0, 25.0, 0.0),
            SimConfig::default(),
        );
        sim.run_for(5 * SEC);
        let stats = sim.run_for(10 * SEC);
        assert!(stats.utilization > 0.85, "{}", stats.utilization);
    }

    #[test]
    fn collapses_under_random_loss() {
        let mut sim = FlowSim::new(
            Box::new(Cubic::new()),
            LinkParams::new(12.0, 25.0, 0.03),
            SimConfig::default(),
        );
        sim.run_for(5 * SEC);
        let stats = sim.run_for(15 * SEC);
        assert!(
            stats.utilization < 0.5,
            "Cubic at 3% loss must collapse (the paper's premise): {}",
            stats.utilization
        );
    }
}
