//! PCC Vivace (Dong et al., NSDI '18): online-learning congestion control —
//! the second of the modern protocols the paper's §4 lists alongside BBR
//! and Copa.
//!
//! Model-level implementation of the core loop: the sender maintains a
//! sending rate and runs *monitor intervals* (MIs). Consecutive MIs probe
//! the rate up and down by ε; each MI is scored with the Vivace utility
//!
//! ```text
//! u(r) = r^0.9 − b · r · (dRTT/dt)⁺ − c · r · loss
//! ```
//!
//! and the rate follows the empirical utility gradient with a
//! confidence-amplified step (simplified from the paper's dual-ε scheme).

use netsim::{AckEvent, BitsPerSec, CongestionControl, Nanosecs};

const MSS: f64 = 1500.0;

/// Utility exponent on rate.
const POWER: f64 = 0.9;
/// Latency-gradient penalty coefficient (paper: 900 on Mbps-scaled rates;
/// rescaled for our utility in Mbit/s).
const LATENCY_COEF: f64 = 11.35;
/// Loss penalty coefficient.
const LOSS_COEF: f64 = 11.35;
/// Probe amplitude ε.
const EPSILON: f64 = 0.05;
/// Monitor-interval length in RTTs. Longer MIs average out binomial loss
/// noise, which otherwise swamps the empirical utility gradient at small
/// loss rates (the real Vivace additionally uses robust regression).
const MI_RTTS: f64 = 3.0;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Multiplicative rate doubling until utility falls.
    Starting,
    /// Probing `rate·(1+ε)` then `rate·(1−ε)` and following the gradient.
    ProbeUp,
    ProbeDown,
}

/// One monitor interval's accounting.
#[derive(Debug, Clone, Copy, Default)]
struct Interval {
    start_s: f64,
    acked_bytes: f64,
    losses: f64,
    first_rtt: Option<f64>,
    last_rtt: f64,
    acks: u32,
}

impl Interval {
    /// Vivace utility of this interval at sending rate `rate_mbps`.
    fn utility(&self, rate_mbps: f64, duration_s: f64) -> f64 {
        let goodput = self.acked_bytes * 8.0 / duration_s.max(1e-3) / 1e6;
        let loss_rate = if self.acks > 0 {
            self.losses / (self.losses + self.acks as f64)
        } else if self.losses > 0.0 {
            1.0
        } else {
            0.0
        };
        let rtt_gradient = match self.first_rtt {
            Some(first) if self.acks >= 2 => {
                ((self.last_rtt - first) / duration_s.max(1e-3)).max(0.0)
            }
            _ => 0.0,
        };
        goodput.max(0.0).powf(POWER)
            - LATENCY_COEF * rate_mbps * rtt_gradient
            - LOSS_COEF * rate_mbps * loss_rate
    }
}

/// PCC Vivace.
#[derive(Debug, Clone)]
pub struct Vivace {
    /// Base sending rate, Mbit/s.
    rate_mbps: f64,
    phase: Phase,
    srtt_s: f64,
    current: Interval,
    /// Utility of the completed up-probe, awaiting the down-probe.
    up_utility: Option<f64>,
    /// Previous gradient sign for step amplification.
    prev_step_mbps: f64,
    consecutive_same_direction: u32,
}

impl Default for Vivace {
    fn default() -> Self {
        Self::new()
    }
}

impl Vivace {
    pub fn new() -> Self {
        Vivace {
            rate_mbps: 2.0,
            phase: Phase::Starting,
            srtt_s: 0.1,
            current: Interval::default(),
            up_utility: None,
            prev_step_mbps: 0.0,
            consecutive_same_direction: 0,
        }
    }

    pub fn rate_mbps(&self) -> f64 {
        self.rate_mbps
    }

    fn probe_multiplier(&self) -> f64 {
        match self.phase {
            Phase::Starting => 1.0,
            Phase::ProbeUp => 1.0 + EPSILON,
            Phase::ProbeDown => 1.0 - EPSILON,
        }
    }

    fn mi_duration(&self) -> f64 {
        (MI_RTTS * self.srtt_s).max(0.01)
    }

    fn finish_interval(&mut self, now_s: f64) {
        let duration = now_s - self.current.start_s;
        let rate = self.rate_mbps * self.probe_multiplier();
        let utility = self.current.utility(rate, duration);
        match self.phase {
            Phase::Starting => {
                // slow-start-like doubling while utility keeps growing
                if let Some(prev) = self.up_utility {
                    if utility < prev {
                        self.phase = Phase::ProbeUp;
                        self.rate_mbps /= 2.0; // undo the unprofitable double
                        self.up_utility = None;
                    } else {
                        self.up_utility = Some(utility);
                        self.rate_mbps *= 2.0;
                    }
                } else {
                    self.up_utility = Some(utility);
                    self.rate_mbps *= 2.0;
                }
            }
            Phase::ProbeUp => {
                self.up_utility = Some(utility);
                self.phase = Phase::ProbeDown;
            }
            Phase::ProbeDown => {
                let u_up = self.up_utility.take().unwrap_or(utility);
                let u_down = utility;
                // empirical gradient over the 2ε rate spread
                let grad = (u_up - u_down) / (2.0 * EPSILON * self.rate_mbps).max(1e-6);
                let mut step = 0.05 * grad; // base step, Mbit/s per utility-unit
                                            // confidence amplification on persistent direction
                if step * self.prev_step_mbps > 0.0 {
                    self.consecutive_same_direction += 1;
                    step *= 1.0 + 0.5 * self.consecutive_same_direction.min(8) as f64;
                } else {
                    self.consecutive_same_direction = 0;
                }
                // bound the per-MI change to keep the controller stable
                let max_step = (0.3 * self.rate_mbps).max(0.1);
                step = step.clamp(-max_step, max_step);
                self.prev_step_mbps = step;
                self.rate_mbps = (self.rate_mbps + step).max(0.1);
                self.phase = Phase::ProbeUp;
            }
        }
        self.current = Interval { start_s: now_s, ..Interval::default() };
    }
}

impl CongestionControl for Vivace {
    fn name(&self) -> &str {
        "vivace"
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.srtt_s = 0.875 * self.srtt_s + 0.125 * ack.rtt_s();
        if self.current.acks == 0 && self.current.start_s == 0.0 {
            self.current.start_s = ack.now_s() - self.mi_duration().min(ack.now_s());
        }
        self.current.acked_bytes += ack.newly_acked_bytes() as f64;
        self.current.acks += 1;
        if self.current.first_rtt.is_none() {
            self.current.first_rtt = Some(ack.rtt_s());
        }
        self.current.last_rtt = ack.rtt_s();
        if ack.now_s() - self.current.start_s >= self.mi_duration() {
            self.finish_interval(ack.now_s());
        }
    }

    fn on_loss(&mut self, lost: usize, _now: Nanosecs) {
        self.current.losses += lost as f64;
    }

    fn on_rto(&mut self, now: Nanosecs) {
        // heavy event: halve the rate and restart the probing cycle
        self.rate_mbps = (self.rate_mbps / 2.0).max(0.1);
        self.phase = Phase::ProbeUp;
        self.up_utility = None;
        self.current = Interval { start_s: now.as_secs_f64(), ..Interval::default() };
    }

    fn pacing_rate(&self) -> BitsPerSec {
        BitsPerSec::from_bps(self.rate_mbps * self.probe_multiplier() * 1e6)
    }

    fn cwnd_packets(&self) -> f64 {
        // rate-based protocol: cwnd is a generous safety cap of 2 rate·RTT
        (2.0 * self.rate_mbps * 1e6 / 8.0 * self.srtt_s / MSS).max(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowSim, LinkParams, SimConfig, SEC};

    #[test]
    fn fills_a_clean_link() {
        let mut sim = FlowSim::new(
            Box::new(Vivace::new()),
            LinkParams::new(12.0, 25.0, 0.0),
            SimConfig::default(),
        );
        sim.run_for(8 * SEC);
        let stats = sim.run_for(12 * SEC);
        assert!(stats.utilization > 0.7, "Vivace on a clean link: {}", stats.utilization);
    }

    #[test]
    fn tolerates_moderate_random_loss() {
        // the Vivace paper's selling point vs TCP: graceful behaviour under
        // random loss below its ~5% sensitivity threshold
        let mut sim = FlowSim::new(
            Box::new(Vivace::new()),
            LinkParams::new(12.0, 25.0, 0.01),
            SimConfig::default(),
        );
        sim.run_for(8 * SEC);
        let stats = sim.run_for(12 * SEC);
        assert!(stats.utilization > 0.5, "Vivace under 1% loss: {}", stats.utilization);
    }

    #[test]
    fn utility_penalizes_loss_and_latency_growth() {
        let base = Interval {
            start_s: 0.0,
            acked_bytes: 37_500.0, // 3 Mbit in 0.1 s = 3 Mbit/s goodput
            losses: 0.0,
            first_rtt: Some(0.05),
            last_rtt: 0.05,
            acks: 25,
        };
        let clean = base.utility(3.0, 0.1);
        let lossy = Interval { losses: 5.0, ..base }.utility(3.0, 0.1);
        let bloated = Interval { last_rtt: 0.08, ..base }.utility(3.0, 0.1);
        assert!(clean > lossy, "loss must cost utility: {clean} vs {lossy}");
        assert!(clean > bloated, "rtt growth must cost utility: {clean} vs {bloated}");
    }

    #[test]
    fn rto_halves_rate() {
        let mut v = Vivace::new();
        v.rate_mbps = 8.0;
        v.on_rto(Nanosecs::from_secs_f64(1.0));
        assert_eq!(v.rate_mbps(), 4.0);
    }

    #[test]
    fn starting_phase_grows_rate() {
        let mut v = Vivace::new();
        let r0 = v.rate_mbps();
        // an uncongested link: goodput tracks the sending rate, latency
        // flat, no loss — utility grows with rate, so Starting must double
        let mut now = 0.0;
        for _ in 0..600 {
            now += 0.01;
            let goodput_bytes = v.pacing_rate().bps() / 8.0 * 0.01;
            v.on_ack(&AckEvent::from_raw(
                now,
                0.05,
                v.pacing_rate().bps(),
                goodput_bytes as usize,
                30_000,
                0,
                0,
            ));
        }
        assert!(v.rate_mbps() > 2.0 * r0, "rate should grow from {r0} (now {})", v.rate_mbps());
    }
}
