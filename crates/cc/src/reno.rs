//! TCP Reno (AIMD): the classic loss-based baseline.

use netsim::{AckEvent, BitsPerSec, CongestionControl, Nanosecs};

const MSS: f64 = 1500.0;

/// TCP Reno: slow start, additive increase (1 packet per RTT),
/// multiplicative decrease (halving on loss).
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
    srtt_s: f64,
    recovery_until_s: f64,
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl Reno {
    pub fn new() -> Self {
        Reno { cwnd: 10.0, ssthresh: f64::INFINITY, srtt_s: 0.1, recovery_until_s: 0.0 }
    }

    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Halve the window, at most once per RTT (shared by duplicate-ACK
    /// loss and RFC 3168 ECN response).
    fn reduce(&mut self, now_s: f64) {
        if now_s < self.recovery_until_s {
            return;
        }
        self.cwnd = (self.cwnd / 2.0).max(2.0);
        self.ssthresh = self.cwnd;
        self.recovery_until_s = now_s + self.srtt_s;
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &str {
        "reno"
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.srtt_s = 0.875 * self.srtt_s + 0.125 * ack.rtt_s();
        // RFC 3168: an ECN echo halves the window like a loss, once per RTT
        if ack.ecn {
            self.reduce(ack.now_s());
        }
        if self.in_slow_start() {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
    }

    fn on_loss(&mut self, _lost: usize, now: Nanosecs) {
        self.reduce(now.as_secs_f64());
    }

    fn on_rto(&mut self, now: Nanosecs) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 2.0;
        self.recovery_until_s = now.as_secs_f64() + self.srtt_s;
    }

    fn pacing_rate(&self) -> BitsPerSec {
        BitsPerSec::from_bps(1.2 * self.cwnd * MSS * 8.0 / self.srtt_s.max(1e-3))
    }

    fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FlowSim, LinkParams, SimConfig, SEC};

    fn ack(now_s: f64) -> AckEvent {
        AckEvent::from_raw(now_s, 0.05, 10e6, 1500, 15_000, 0, 0)
    }

    #[test]
    fn additive_increase_in_congestion_avoidance() {
        let mut r = Reno::new();
        r.ssthresh = 5.0;
        r.cwnd = 10.0;
        // one full window of ACKs grows cwnd by ~1
        for i in 0..10 {
            r.on_ack(&ack(i as f64 * 0.005));
        }
        assert!((r.cwnd() - 11.0).abs() < 0.05, "{}", r.cwnd());
    }

    #[test]
    fn multiplicative_decrease() {
        let mut r = Reno::new();
        r.cwnd = 40.0;
        r.on_loss(1, Nanosecs::from_secs_f64(1.0));
        assert_eq!(r.cwnd(), 20.0);
        assert_eq!(r.ssthresh, 20.0);
    }

    #[test]
    fn ecn_mark_halves_window() {
        let mut r = Reno::new();
        r.ssthresh = 5.0;
        r.cwnd = 40.0;
        let mut marked = ack(1.0);
        marked.ecn = true;
        r.on_ack(&marked);
        assert!(r.cwnd() < 21.0, "ECN echo must halve: {}", r.cwnd());
    }

    #[test]
    fn slow_start_until_ssthresh() {
        let mut r = Reno::new();
        assert!(r.in_slow_start());
        r.ssthresh = 12.0;
        for i in 0..2 {
            r.on_ack(&ack(i as f64 * 0.01));
        }
        assert!(!r.in_slow_start());
    }

    #[test]
    fn sawtooth_on_clean_link_still_fills_most() {
        let mut sim = FlowSim::new(
            Box::new(Reno::new()),
            LinkParams::new(12.0, 25.0, 0.0),
            SimConfig::default(),
        );
        sim.run_for(5 * SEC);
        let stats = sim.run_for(10 * SEC);
        assert!(stats.utilization > 0.8, "{}", stats.utilization);
    }

    #[test]
    fn collapses_under_one_percent_loss() {
        // the paper: "Cubic, Reno and HTCP all share a trivial weakness to
        // packet loss even as low as 1%"
        let mut sim = FlowSim::new(
            Box::new(Reno::new()),
            LinkParams::new(12.0, 25.0, 0.01),
            SimConfig::default(),
        );
        sim.run_for(5 * SEC);
        let stats = sim.run_for(15 * SEC);
        assert!(stats.utilization < 0.65, "Reno at 1% loss: {}", stats.utilization);
    }
}
