//! Deterministic fault injection for the whole workspace.
//!
//! The training/eval stack stress-tests *protocols* under hostile inputs;
//! this crate turns the same philosophy on the stack itself. Code under
//! test registers **fault points** — `fault::check("ppo.update")`,
//! `fault::check_value("ppo.iter", iteration)` — which are free no-ops
//! until a **fault plan** is installed. A plan is a comma-separated list
//! of `kind@point:trigger` entries parsed from the `ADVNET_FAULT_PLAN`
//! environment variable, e.g.
//!
//! ```text
//! ADVNET_FAULT_PLAN="panic@ppo.update:3,nan@nn.grads:5,corrupt@ckpt.write:1,stall@exec.worker.2:4"
//! ```
//!
//! Four fault kinds exist:
//!
//! * `panic`   — `check` panics at the trigger (simulated crash / kill);
//! * `nan`     — the call site poisons a float payload (exercises
//!   divergence guards);
//! * `corrupt` — the call site flips bits in the artifact it just wrote
//!   (exercises checksum validation + quarantine);
//! * `stall`   — the call site blocks for `stall_ms` without heartbeating
//!   (exercises the exec watchdog).
//!
//! Triggers are **1-based hit counts** per point (`panic@ppo.update:3`
//! fires on the third `check("ppo.update")` of the process) except for
//! value points (`check_value`), where the trigger is compared against
//! the value the caller passes — that is how `ppo.iter` preserves the
//! exact semantics of the legacy `ADVNET_FAULT_ITER` hook across a
//! resume, where the iteration counter continues but hit counts restart.
//!
//! The full inventory of registered points (and which subsystem absorbs
//! each injection) is the DESIGN.md §10 fault matrix. It spans training
//! (`ppo.*`, `nn.grads*`, `ckpt.*`), execution (`exec.item`,
//! `exec.worker.<slot>`, `exec.grad_accum`), the bench pipeline
//! (`bench.unit`, `cache.*`, `traces.load`), the packet simulator
//! (`netsim.event` — per event pop; `netsim.enqueue` — per bottleneck
//! admission, where `corrupt` force-drops the packet), the serving fleet
//! (`serve.obs`, `serve.policy`, `serve.shard.<id>`) and the arena pool
//! (`pool.read`/`pool.write`).
//!
//! Two plan-wide settings may appear as `key=value` entries:
//! `stall_ms=<ms>` (duration of injected stalls, default 60000) and
//! `seed=<u64>` (reserved for randomized plans; recorded so a campaign
//! is replayable from its plan string alone).
//!
//! The registry is process-global and re-installable (tests serialize on
//! an env lock and call [`reload_from_env`] or [`install`] directly).
//! When no plan was ever installed, the first `check` lazily loads the
//! environment, so binaries need no explicit setup — though calling
//! [`reload_from_env`] at startup gives earlier parse errors.
//!
//! The crate also hosts [`Backoff`], the one retry/backoff policy shared
//! by `exec`, `rl` and `bench` (exponential, jitter from the vendored
//! `rand`, capped), replacing the scattered bare `max_retries` counters.

use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Environment variable holding the fault plan.
pub const PLAN_ENV: &str = "ADVNET_FAULT_PLAN";
/// Legacy single-fault hook (PR 2): `ADVNET_FAULT_ITER=<n>` is now an
/// alias for `panic@ppo.iter:<n>`.
pub const LEGACY_ITER_ENV: &str = "ADVNET_FAULT_ITER";

/// What a triggered fault point injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside `check` — a simulated crash.
    Panic,
    /// Ask the call site to poison its float payload with NaN.
    Nan,
    /// Ask the call site to corrupt the artifact it produced.
    Corrupt,
    /// Ask the call site to stall without heartbeating.
    Stall,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "nan" => Some(FaultKind::Nan),
            "corrupt" => Some(FaultKind::Corrupt),
            "stall" => Some(FaultKind::Stall),
            _ => None,
        }
    }
    fn name(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Nan => "nan",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Stall => "stall",
        }
    }
}

/// One `kind@point:trigger` entry of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    pub kind: FaultKind,
    pub point: String,
    /// 1-based hit count for `check` points, compared value for
    /// `check_value` points.
    pub trigger: u64,
}

/// A parsed fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub specs: Vec<FaultSpec>,
    /// Duration of injected stalls, milliseconds.
    pub stall_ms: u64,
    /// Recorded so a campaign is replayable from its plan string.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan { specs: Vec::new(), stall_ms: 60_000, seed: 0 }
    }
}

impl FaultPlan {
    /// The empty plan: every fault point is a no-op.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parse a plan string: comma-separated `kind@point:trigger` entries
    /// plus optional `stall_ms=<ms>` / `seed=<u64>` settings. Whitespace
    /// around entries is ignored; an empty string is the empty plan.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::empty();
        for entry in s.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some((key, value)) = entry.split_once('=') {
                let value: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault plan: bad value in {entry:?}"))?;
                match key.trim() {
                    "stall_ms" => plan.stall_ms = value,
                    "seed" => plan.seed = value,
                    other => return Err(format!("fault plan: unknown setting {other:?}")),
                }
                continue;
            }
            let (kind, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault plan: expected kind@point:trigger, got {entry:?}"))?;
            let kind = FaultKind::parse(kind.trim())
                .ok_or_else(|| format!("fault plan: unknown fault kind {kind:?} in {entry:?}"))?;
            let (point, trigger) = rest
                .rsplit_once(':')
                .ok_or_else(|| format!("fault plan: missing :trigger in {entry:?}"))?;
            let trigger: u64 = trigger
                .trim()
                .parse()
                .map_err(|_| format!("fault plan: bad trigger in {entry:?}"))?;
            let point = point.trim();
            if point.is_empty() {
                return Err(format!("fault plan: empty point name in {entry:?}"));
            }
            if trigger == 0 {
                return Err(format!("fault plan: triggers are 1-based, got 0 in {entry:?}"));
            }
            plan.specs.push(FaultSpec { kind, point: point.to_string(), trigger });
        }
        Ok(plan)
    }

    /// Canonical plan string (`parse` ∘ `render` is the identity on the
    /// spec list).
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .specs
            .iter()
            .map(|s| format!("{}@{}:{}", s.kind.name(), s.point, s.trigger))
            .collect();
        if self.stall_ms != FaultPlan::default().stall_ms {
            parts.push(format!("stall_ms={}", self.stall_ms));
        }
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        parts.join(",")
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// What a triggered non-panic fault asks the call site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Poison the float payload with NaN.
    Nan,
    /// Corrupt the artifact just produced (flip bits on disk).
    Corrupt,
    /// Block for this long without heartbeating.
    Stall(Duration),
}

struct PlanState {
    plan: FaultPlan,
    hits: HashMap<String, u64>,
}

/// `None` = never initialised (first `check` loads the environment);
/// `Some` = an installed plan (possibly empty).
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);
/// Fast path: lets hot loops skip the mutex and the point-name
/// formatting entirely when no fault is armed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static LEGACY_NOTE: std::sync::Once = std::sync::Once::new();

/// True iff the installed plan has at least one spec. Hot paths gate
/// `check` calls (and the `format!` building dynamic point names) on
/// this — it is a single relaxed atomic load.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Install a plan, resetting all hit counters. Replaces any previous
/// plan (the registry is deliberately re-installable so tests can run
/// several campaigns in one process).
pub fn install(plan: FaultPlan) {
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    ACTIVE.store(!plan.is_empty(), Ordering::Relaxed);
    *state = Some(PlanState { plan, hits: HashMap::new() });
}

/// Remove any installed plan; all fault points become no-ops.
pub fn clear() {
    install(FaultPlan::empty());
}

/// Build the plan described by the environment: `ADVNET_FAULT_PLAN`,
/// plus the legacy `ADVNET_FAULT_ITER=<n>` hook mapped to
/// `panic@ppo.iter:<n>` (with a one-time deprecation note on stderr).
pub fn plan_from_env() -> Result<FaultPlan, String> {
    let mut plan = match std::env::var(PLAN_ENV) {
        Ok(s) => FaultPlan::parse(&s)?,
        Err(_) => FaultPlan::empty(),
    };
    if let Ok(s) = std::env::var(LEGACY_ITER_ENV) {
        let iter: u64 = s
            .trim()
            .parse()
            .map_err(|_| format!("{LEGACY_ITER_ENV}: expected an iteration number, got {s:?}"))?;
        LEGACY_NOTE.call_once(|| {
            eprintln!(
                "note: {LEGACY_ITER_ENV} is deprecated; use {PLAN_ENV}=\"panic@ppo.iter:{iter}\""
            );
        });
        plan.specs.push(FaultSpec {
            kind: FaultKind::Panic,
            point: "ppo.iter".to_string(),
            trigger: iter,
        });
    }
    Ok(plan)
}

/// (Re)load the plan from the environment and install it. Returns the
/// canonical plan string when a non-empty plan was installed. A parse
/// error leaves the previous plan in place.
///
/// Idempotent while the environment is unchanged: if it describes
/// exactly the plan already installed, the hit counters are preserved.
/// Mid-run constructors (`rl::Checkpointer::new`, `bench` pipelines)
/// can therefore all call this at startup without resetting a campaign
/// already in flight in the same process.
pub fn reload_from_env() -> Result<Option<String>, String> {
    let plan = plan_from_env()?;
    let rendered = (!plan.is_empty()).then(|| plan.render());
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    match guard.as_ref() {
        Some(state) if state.plan == plan => {}
        _ => {
            ACTIVE.store(!plan.is_empty(), Ordering::Relaxed);
            *guard = Some(PlanState { plan, hits: HashMap::new() });
        }
    }
    Ok(rendered)
}

fn with_state<R>(f: impl FnOnce(&mut PlanState) -> R) -> R {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let state = guard.get_or_insert_with(|| {
        // Lazy bootstrap: binaries get env-var plans without any setup.
        let plan = plan_from_env().unwrap_or_else(|e| {
            // A malformed campaign must fail loudly, not silently skip
            // its injections.
            panic!("{e}");
        });
        ACTIVE.store(!plan.is_empty(), Ordering::Relaxed);
        PlanState { plan, hits: HashMap::new() }
    });
    f(state)
}

fn fire(kind: FaultKind, point: &str, trigger: u64, stall_ms: u64) -> Option<Injection> {
    // recorded before the Panic arm unwinds, so every injection — crashes
    // included — is visible as `fault.fired.<kind>.<point>` in the manifest
    telemetry::counter_add(&format!("fault.fired.{}.{point}", kind.name()), 1);
    match kind {
        FaultKind::Panic => {
            panic!("fault-plan: injected panic at {point} (trigger {trigger})")
        }
        FaultKind::Nan => Some(Injection::Nan),
        FaultKind::Corrupt => Some(Injection::Corrupt),
        FaultKind::Stall => Some(Injection::Stall(Duration::from_millis(stall_ms))),
    }
}

/// Register one hit of a fault point. Increments the point's hit counter
/// and fires any spec whose trigger equals the new count: `Panic` panics
/// right here; the other kinds return an [`Injection`] the call site is
/// responsible for acting on. Returns `None` (and is cheap) when no
/// plan is armed for this point.
pub fn check(point: &str) -> Option<Injection> {
    telemetry::counter_add("fault.checks", 1);
    if !active() {
        // Cheap path — but make sure lazy env bootstrap still happens
        // for processes that never call install().
        let bootstrapped = {
            let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
            guard.is_some()
        };
        if bootstrapped {
            return None;
        }
    }
    with_state(|state| {
        let count = state.hits.entry(point.to_string()).or_insert(0);
        *count += 1;
        let hit = *count;
        let stall_ms = state.plan.stall_ms;
        let spec = state.plan.specs.iter().find(|s| s.point == point && s.trigger == hit).cloned();
        spec.and_then(|s| fire(s.kind, point, s.trigger, stall_ms))
    })
}

/// Like [`check`] but the trigger is compared against `value` instead of
/// a hit count (the counter is not consulted or advanced). Used for
/// points whose natural coordinate survives a resume — e.g. the PPO
/// iteration number, so `panic@ppo.iter:3` fires at iteration 3 exactly
/// like the legacy `ADVNET_FAULT_ITER=3` did, even though a resumed
/// process starts its hit counts from zero.
pub fn check_value(point: &str, value: u64) -> Option<Injection> {
    telemetry::counter_add("fault.checks", 1);
    if !active() {
        let bootstrapped = {
            let guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
            guard.is_some()
        };
        if bootstrapped {
            return None;
        }
    }
    with_state(|state| {
        let stall_ms = state.plan.stall_ms;
        let spec =
            state.plan.specs.iter().find(|s| s.point == point && s.trigger == value).cloned();
        spec.and_then(|s| fire(s.kind, point, s.trigger, stall_ms))
    })
}

/// Flip one bit near the end of a file in place — the standard way a
/// `corrupt` injection damages the artifact its call site just wrote
/// (simulated bit rot; deliberately not atomic). Checksummed readers
/// must reject the file afterwards.
pub fn corrupt_file(path: &std::path::Path) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if let Some(last) = bytes.len().checked_sub(2) {
        bytes[last] ^= 0x01;
    }
    std::fs::write(path, bytes)
}

/// The workspace-wide retry/backoff policy: exponential delays with
/// deterministic jitter, capped. `retries` is the number of *re*-tries
/// after the first attempt, matching the old bare `max_retries`
/// counters this type replaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry; doubles every further retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Number of retries after the initial attempt (0 = fail fast).
    pub retries: usize,
    /// Seed for the jitter stream — same seed, same delays.
    pub seed: u64,
}

impl Backoff {
    /// Retry immediately, `retries` times, with no delay. The right
    /// policy for deterministic rollback-and-rerun paths (exec slot
    /// retries) where waiting buys nothing.
    pub const fn none(retries: usize) -> Backoff {
        Backoff { base: Duration::ZERO, cap: Duration::ZERO, retries, seed: 0 }
    }

    /// The standard policy for I/O-ish work: 25 ms base, doubling,
    /// capped at 2 s, with deterministic jitter.
    pub const fn standard(retries: usize, seed: u64) -> Backoff {
        Backoff { base: Duration::from_millis(25), cap: Duration::from_secs(2), retries, seed }
    }

    /// Delay before retry number `attempt` (1-based: the delay after the
    /// first failure is `delay(1)`). Exponential in `attempt`, capped at
    /// `cap`, with ±50% deterministic jitter drawn from the vendored
    /// xoshiro `StdRng` seeded by `(seed, attempt)` — replayable, and
    /// decorrelated across attempts.
    pub fn delay(&self, attempt: usize) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(32) as u32;
        let nominal = self.base.saturating_mul(2u32.saturating_pow(exp)).min(self.cap);
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            self.seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let jitter = 0.5 + rng.gen::<f64>(); // uniform in [0.5, 1.5)
        nominal.mul_f64(jitter).min(self.cap)
    }

    /// Sleep for `delay(attempt)` (no-op for zero delays).
    pub fn pause(&self, attempt: usize) {
        let d = self.delay(attempt);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests that install plans serialize
    // on this lock (mirrors tests/fault_tolerance.rs).
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parses_the_issue_example_plan() {
        let plan = FaultPlan::parse(
            "panic@ppo.update:3,nan@nn.grads:5,corrupt@ckpt.write:1,stall@exec.worker.2:4",
        )
        .unwrap();
        assert_eq!(plan.specs.len(), 4);
        assert_eq!(
            plan.specs[0],
            FaultSpec { kind: FaultKind::Panic, point: "ppo.update".into(), trigger: 3 }
        );
        assert_eq!(
            plan.specs[3],
            FaultSpec { kind: FaultKind::Stall, point: "exec.worker.2".into(), trigger: 4 }
        );
        assert_eq!(plan.stall_ms, 60_000);
    }

    #[test]
    fn parse_render_roundtrip_and_settings() {
        let s = "stall@exec.worker.0:1,stall_ms=250,seed=9";
        let plan = FaultPlan::parse(s).unwrap();
        assert_eq!(plan.stall_ms, 250);
        assert_eq!(plan.seed, 9);
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in ["boom@x:1", "panic@x", "panic@x:zero", "panic@:1", "panic@x:0", "wat=3"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn hit_counted_points_fire_once_at_their_trigger() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(FaultPlan::parse("nan@t.point:2").unwrap());
        assert_eq!(check("t.point"), None);
        assert_eq!(check("t.point"), Some(Injection::Nan));
        assert_eq!(check("t.point"), None); // does not re-fire
        assert_eq!(check("t.other"), None);
        clear();
    }

    #[test]
    fn value_points_compare_the_passed_value() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(FaultPlan::parse("corrupt@t.val:7").unwrap());
        assert_eq!(check_value("t.val", 6), None);
        assert_eq!(check_value("t.val", 7), Some(Injection::Corrupt));
        // Value triggers re-fire if the same value is seen again — the
        // caller's coordinate, not our counter, decides.
        assert_eq!(check_value("t.val", 7), Some(Injection::Corrupt));
        clear();
    }

    #[test]
    fn panic_kind_panics_inside_check() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(FaultPlan::parse("panic@t.crash:1").unwrap());
        let r = std::panic::catch_unwind(|| check("t.crash"));
        clear();
        let payload = r.expect_err("should panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("fault-plan"), "{msg}");
    }

    #[test]
    fn stall_injection_carries_plan_stall_ms() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(FaultPlan::parse("stall@t.slow:1,stall_ms=123").unwrap());
        assert_eq!(check("t.slow"), Some(Injection::Stall(Duration::from_millis(123))));
        clear();
    }

    #[test]
    fn inactive_plan_is_a_cheap_noop() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        assert!(!active());
        assert_eq!(check("anything"), None);
        assert_eq!(check_value("anything", 3), None);
    }

    #[test]
    fn backoff_none_is_instant_and_bounded() {
        let b = Backoff::none(2);
        assert_eq!(b.retries, 2);
        assert_eq!(b.delay(1), Duration::ZERO);
        assert_eq!(b.delay(10), Duration::ZERO);
    }

    #[test]
    fn backoff_delays_are_deterministic_growing_and_capped() {
        let b = Backoff::standard(5, 42);
        assert_eq!(b.delay(1), b.delay(1), "jitter must be replayable");
        assert_ne!(b.delay(1), b.delay(2), "attempts are decorrelated");
        for attempt in 1..200 {
            assert!(b.delay(attempt) <= b.cap);
        }
        // Nominal growth: with jitter in [0.5, 1.5), attempt 4 (200ms
        // nominal) always exceeds attempt 1's maximum (37.5ms).
        assert!(b.delay(4) > b.delay(1));
    }

    #[test]
    fn reload_preserves_hit_counters_while_env_is_unchanged() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var(LEGACY_ITER_ENV);
        std::env::set_var(PLAN_ENV, "nan@t.reload:2");
        reload_from_env().unwrap();
        assert_eq!(check("t.reload"), None); // hit 1 of 2
        reload_from_env().unwrap(); // same env: counters must survive
        assert_eq!(check("t.reload"), Some(Injection::Nan)); // hit 2 fires
        std::env::set_var(PLAN_ENV, "nan@t.reload:1");
        reload_from_env().unwrap(); // changed env: counters reset
        assert_eq!(check("t.reload"), Some(Injection::Nan));
        std::env::remove_var(PLAN_ENV);
        reload_from_env().unwrap();
        assert!(!active());
        clear();
    }

    #[test]
    fn legacy_iter_env_maps_to_ppo_iter_panic() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var(LEGACY_ITER_ENV, "4");
        std::env::remove_var(PLAN_ENV);
        let plan = plan_from_env().unwrap();
        std::env::remove_var(LEGACY_ITER_ENV);
        assert_eq!(
            plan.specs,
            vec![FaultSpec { kind: FaultKind::Panic, point: "ppo.iter".into(), trigger: 4 }]
        );
        clear();
    }
}
